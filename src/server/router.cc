#include "server/router.h"

#include <cstdlib>
#include <utility>

#include "server/binary_codec.h"
#include "server/protocol.h"
#include "util/endian.h"
#include "util/json.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

using server::Frame;
using server::FrameKind;

/// The ring hash: FNV-1a 64 with a Murmur3 avalanche finalizer. Not
/// cryptographic; it only needs to spread session ids evenly and be
/// identical on every router instance. The finalizer matters: plain
/// FNV-1a places near-identical strings (sequential ids like "r0", "r1",
/// … — exactly what the router generates) in correlated ring positions,
/// which starved whole workers in practice. tools/tcp_smoke.py carries an
/// independent reimplementation; keep the two bit-identical.
std::uint64_t RingHash(std::string_view bytes) {
  std::uint64_t hash = 14695981039346656037ull;  // FNV-1a 64 offset basis
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  hash ^= hash >> 33;
  hash *= 0xFF51AFD7ED558CCDull;
  hash ^= hash >> 33;
  hash *= 0xC4CEB9FE1A85EC53ull;
  hash ^= hash >> 33;
  return hash;
}

/// Wire name for a binary request type byte (error replies only).
std::string_view BinaryOpName(std::uint8_t type) {
  switch (type) {
    case server::kBinaryMsgObserveRequest: return "observe";
    case server::kBinaryMsgSnapshotRequest: return "snapshot";
    case server::kBinaryMsgFinalizeRequest: return "finalize";
    case server::kBinaryMsgCheckpointRequest: return "checkpoint";
    case server::kBinaryMsgRestoreRequest: return "restore";
    default: return "";
  }
}

Frame JsonError(std::string_view op, std::string_view session,
                const Status& status) {
  return Frame{FrameKind::kJson, server::ErrorResponse(op, session, status)};
}

Frame BinaryError(std::string_view op, std::string_view session,
                  const Status& status) {
  return Frame{FrameKind::kBinary,
               server::EncodeBinaryError(op, session, status)};
}

}  // namespace

/// One backend worker: its parsed address plus a pool of idle
/// connections. A connection is checked out for exactly one round-trip,
/// so pooled connections never carry interleaved replies.
struct Router::Worker {
  std::string address;  ///< as configured (messages, stats)
  bool is_unix = false;
  std::string host;  ///< dotted quad, or the unix socket path
  std::uint16_t port = 0;

  std::mutex mutex;  ///< guards `idle`
  std::vector<server::TcpFrameClient> idle;

  std::atomic<std::uint64_t> forwarded{0};
  std::atomic<std::uint64_t> reconnects{0};
  std::atomic<std::uint64_t> errors{0};
};

Router::Router(const RouterOptions& options) : options_(options) {}

Router::~Router() { Shutdown(); }

Status Router::Start() {
  if (options_.workers.empty()) {
    return Status::InvalidArgument("router needs at least one worker address");
  }
  for (const std::string& address : options_.workers) {
    auto worker = std::make_unique<Worker>();
    worker->address = address;
    if (address.rfind("unix:", 0) == 0) {
      worker->is_unix = true;
      worker->host = address.substr(5);
      if (worker->host.empty()) {
        return Status::InvalidArgument(
            StrFormat("worker address '%s' has an empty socket path",
                      address.c_str()));
      }
    } else {
      const std::size_t colon = address.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 == address.size()) {
        return Status::InvalidArgument(StrFormat(
            "worker address '%s' must be host:port or unix:PATH",
            address.c_str()));
      }
      worker->host = address.substr(0, colon);
      char* end = nullptr;
      const unsigned long port =
          std::strtoul(address.c_str() + colon + 1, &end, 10);
      if (end == nullptr || *end != '\0' || port == 0 || port > 65535) {
        return Status::InvalidArgument(StrFormat(
            "worker address '%s' has an invalid port", address.c_str()));
      }
      worker->port = static_cast<std::uint16_t>(port);
    }
    workers_.push_back(std::move(worker));
  }
  // One ring entry per (worker, virtual node). Hash collisions just drop
  // a point — harmless at 64 points per worker.
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    for (std::size_t v = 0; v < options_.virtual_nodes; ++v) {
      ring_.emplace(
          RingHash(StrFormat("%s#%zu", workers_[i]->address.c_str(), v)), i);
    }
  }
  running_.store(true, std::memory_order_release);
  return Status::OK();
}

std::size_t Router::WorkerIndexFor(std::string_view session) const {
  auto it = ring_.lower_bound(RingHash(session));
  if (it == ring_.end()) it = ring_.begin();
  return it->second;
}

Result<server::TcpFrameClient> Router::Dial(const Worker& worker) const {
  if (worker.is_unix) {
    return server::TcpFrameClient::ConnectUnix(worker.host,
                                               options_.max_frame_bytes);
  }
  return server::TcpFrameClient::Connect(worker.host, worker.port,
                                         options_.max_frame_bytes);
}

Result<Frame> Router::Forward(Worker& worker, const Frame& frame) {
  server::TcpFrameClient client;
  bool pooled = false;
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (!worker.idle.empty()) {
      client = std::move(worker.idle.back());
      worker.idle.pop_back();
      pooled = true;
    }
  }
  if (!pooled) {
    CPA_ASSIGN_OR_RETURN(client, Dial(worker));
  }
  Result<Frame> reply = client.Roundtrip(frame.kind, frame.payload);
  if (!reply.ok()) {
    // A pooled connection may be stale (the worker died and came back
    // since the last forward) and a fresh one may have raced a restart:
    // either way, redial once and retry. A second failure means the
    // worker is really gone — fail this request cleanly.
    client.Close();
    worker.reconnects.fetch_add(1, std::memory_order_relaxed);
    Result<server::TcpFrameClient> redialed = Dial(worker);
    if (!redialed.ok()) return reply.status();
    client = std::move(redialed).value();
    reply = client.Roundtrip(frame.kind, frame.payload);
    if (!reply.ok()) return reply.status();
  }
  {
    std::lock_guard<std::mutex> lock(worker.mutex);
    if (running_.load(std::memory_order_acquire)) {
      worker.idle.push_back(std::move(client));
    }
  }
  worker.forwarded.fetch_add(1, std::memory_order_relaxed);
  return reply;
}

Frame Router::ForwardOrError(Worker& worker, const Frame& frame,
                             std::string_view op, std::string_view session) {
  Result<Frame> reply = Forward(worker, frame);
  if (reply.ok()) return std::move(reply).value();
  worker.errors.fetch_add(1, std::memory_order_relaxed);
  const Status status = Status::IOError(
      StrFormat("worker %s unavailable: %s", worker.address.c_str(),
                std::string(reply.status().message()).c_str()));
  return frame.kind == FrameKind::kBinary ? BinaryError(op, session, status)
                                          : JsonError(op, session, status);
}

Frame Router::HandleFrame(const Frame& frame) {
  if (!running_.load(std::memory_order_acquire)) {
    const Status status = Status::FailedPrecondition("router is shut down");
    return frame.kind == FrameKind::kBinary ? BinaryError("", "", status)
                                            : JsonError("", "", status);
  }
  return frame.kind == FrameKind::kJson ? HandleJson(frame)
                                        : HandleBinary(frame);
}

Frame Router::HandleJson(const Frame& frame) {
  Result<JsonValue> parsed = JsonValue::Parse(frame.payload);
  if (!parsed.ok()) return JsonError("", "", parsed.status());
  const JsonValue& json = parsed.value();
  const JsonValue* op_field = json.Find("op");
  if (json.kind() != JsonValue::Kind::kObject || op_field == nullptr ||
      op_field->kind() != JsonValue::Kind::kString) {
    return JsonError(
        "", "", Status::InvalidArgument("request needs a string field 'op'"));
  }
  const std::string& op = op_field->string_value();
  std::string session;
  if (const JsonValue* field = json.Find("session");
      field != nullptr && field->kind() == JsonValue::Kind::kString) {
    session = field->string_value();
  }

  if (op == "list") return HandleList(frame);
  // Registries are identical across the fleet; any worker can answer.
  if (op == "methods") return ForwardOrError(*workers_[0], frame, op, "");

  if ((op == "open" || op == "restore") && session.empty()) {
    // A worker-generated id would not hash back to the worker that owns
    // it, so the router must pick the id up front. This is the only case
    // where a frame is rewritten instead of forwarded verbatim.
    session = StrFormat("r%llu",
                        static_cast<unsigned long long>(next_session_.fetch_add(
                            1, std::memory_order_relaxed)));
    JsonValue::Object fields = json.object();
    fields["session"] = JsonValue(session);
    const Frame rewritten{FrameKind::kJson,
                          JsonValue(std::move(fields)).DumpCompact()};
    return ForwardOrError(*workers_[WorkerIndexFor(session)], rewritten, op,
                          session);
  }

  // Everything else routes by session — including malformed requests
  // (empty session, unknown op), which the owning worker rejects with the
  // same error a single-process server would produce.
  return ForwardOrError(*workers_[WorkerIndexFor(session)], frame, op,
                        session);
}

Frame Router::HandleBinary(const Frame& frame) {
  const std::string_view body = frame.payload;
  // Every binary request starts `u8 type, u16 session length, session`
  // (binary_codec.h) — enough to route without decoding the body.
  if (body.size() < 3) {
    return BinaryError("", "",
                       Status::InvalidArgument("binary message truncated"));
  }
  const auto type = static_cast<std::uint8_t>(body[0]);
  const std::string_view op = BinaryOpName(type);
  const std::uint16_t session_length =
      ReadLittleEndian<std::uint16_t>(body, 1);
  if (body.size() < std::size_t{3} + session_length) {
    return BinaryError(op, "",
                       Status::InvalidArgument("binary message truncated"));
  }
  std::string session(body.substr(3, session_length));

  if (type == server::kBinaryMsgRestoreRequest && session.empty()) {
    // Same id-injection rule as JSON open/restore: the router owns id
    // assignment so the session routes back to its worker afterwards.
    const std::size_t state_offset = std::size_t{3} + session_length;
    if (body.size() < state_offset + 4) {
      return BinaryError(op, "",
                         Status::InvalidArgument("binary message truncated"));
    }
    const std::uint32_t state_length =
        ReadLittleEndian<std::uint32_t>(body, state_offset);
    if (body.size() < state_offset + 4 + state_length) {
      return BinaryError(op, "",
                         Status::InvalidArgument("binary message truncated"));
    }
    session = StrFormat("r%llu",
                        static_cast<unsigned long long>(next_session_.fetch_add(
                            1, std::memory_order_relaxed)));
    const Frame rewritten{
        FrameKind::kBinary,
        server::EncodeRestoreRequest(
            session, body.substr(state_offset + 4, state_length))};
    return ForwardOrError(*workers_[WorkerIndexFor(session)], rewritten, op,
                          session);
  }

  return ForwardOrError(*workers_[WorkerIndexFor(session)], frame, op,
                        session);
}

Frame Router::HandleList(const Frame& frame) {
  // Fan out and merge. Dead workers are skipped — `list` reports the
  // sessions that are actually reachable right now.
  JsonValue::Array rows;
  for (const auto& worker : workers_) {
    Result<Frame> reply = Forward(*worker, frame);
    if (!reply.ok()) {
      worker->errors.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    Result<JsonValue> parsed = JsonValue::Parse(reply.value().payload);
    if (!parsed.ok()) continue;
    const JsonValue* ok = parsed.value().Find("ok");
    if (ok == nullptr || ok->kind() != JsonValue::Kind::kBool ||
        !ok->bool_value()) {
      continue;
    }
    const JsonValue* sessions = parsed.value().Find("sessions");
    if (sessions == nullptr || sessions->kind() != JsonValue::Kind::kArray) {
      continue;
    }
    for (const JsonValue& row : sessions->array()) rows.push_back(row);
  }
  JsonValue::Object fields;
  fields["sessions"] = JsonValue(std::move(rows));
  return Frame{FrameKind::kJson,
               server::OkResponse("list", std::move(fields))};
}

void Router::Shutdown() {
  running_.store(false, std::memory_order_release);
  for (const auto& worker : workers_) {
    std::vector<server::TcpFrameClient> drained;
    {
      std::lock_guard<std::mutex> lock(worker->mutex);
      drained.swap(worker->idle);
    }
    // Destruction closes the sockets; the workers see clean EOFs.
  }
}

std::vector<RouterWorkerStats> Router::worker_stats() const {
  std::vector<RouterWorkerStats> stats;
  stats.reserve(workers_.size());
  for (const auto& worker : workers_) {
    RouterWorkerStats row;
    row.address = worker->address;
    row.frames_forwarded = worker->forwarded.load(std::memory_order_relaxed);
    row.reconnects = worker->reconnects.load(std::memory_order_relaxed);
    row.errors = worker->errors.load(std::memory_order_relaxed);
    stats.push_back(std::move(row));
  }
  return stats;
}

std::uint64_t Router::frames_forwarded() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->forwarded.load(std::memory_order_relaxed);
  }
  return total;
}

std::uint64_t Router::backend_reconnects() const {
  std::uint64_t total = 0;
  for (const auto& worker : workers_) {
    total += worker->reconnects.load(std::memory_order_relaxed);
  }
  return total;
}

}  // namespace cpa
