#include "server/idle_sweeper.h"

#include <algorithm>
#include <chrono>

namespace cpa {

IdleSweeper::IdleSweeper(SessionManager& sessions,
                         double idle_timeout_seconds, double period_seconds)
    : sessions_(sessions), idle_timeout_seconds_(idle_timeout_seconds) {
  period_seconds_ = period_seconds > 0.0
                        ? period_seconds
                        : std::clamp(idle_timeout_seconds / 4.0, 0.1, 60.0);
}

IdleSweeper::~IdleSweeper() { Stop(); }

void IdleSweeper::Start() {
  thread_ = std::thread([this] { Loop(); });
}

void IdleSweeper::Stop() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void IdleSweeper::Loop() {
  const auto period = std::chrono::duration<double>(period_seconds_);
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stopping_) {
    if (wake_.wait_for(lock, period, [this] { return stopping_; })) break;
    // Sweep outside the wait lock so Stop is never blocked behind a
    // session close (engine teardown can be slow).
    lock.unlock();
    expired_.fetch_add(sessions_.ExpireIdle(idle_timeout_seconds_),
                       std::memory_order_relaxed);
    lock.lock();
  }
}

}  // namespace cpa
