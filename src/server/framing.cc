#include "server/framing.h"

#include <algorithm>

#include "util/endian.h"
#include "util/string_utils.h"

namespace cpa::server {
namespace {

void AppendHeaderAndBody(std::string& out, FrameKind kind,
                         std::string_view payload, std::uint8_t flags,
                         std::uint16_t sequence) {
  AppendLittleEndian<std::uint32_t>(out,
                                    static_cast<std::uint32_t>(payload.size()));
  out.push_back(static_cast<char>(kind));
  out.push_back(static_cast<char>(flags));
  AppendLittleEndian<std::uint16_t>(out, sequence);
  out.append(payload);
}

}  // namespace

void AppendFrame(std::string& out, FrameKind kind, std::string_view payload) {
  AppendHeaderAndBody(out, kind, payload, /*flags=*/0, /*sequence=*/0);
}

void AppendFrame(std::string& out, const Frame& frame) {
  AppendHeaderAndBody(out, frame.kind, frame.payload,
                      frame.sequenced ? kFrameFlagSequenced : std::uint8_t{0},
                      frame.sequenced ? frame.sequence : std::uint16_t{0});
}

void AppendSequencedFrame(std::string& out, FrameKind kind,
                          std::string_view payload, std::uint16_t sequence) {
  AppendHeaderAndBody(out, kind, payload, kFrameFlagSequenced, sequence);
}

std::string EncodeFrame(const Frame& frame) {
  std::string out;
  out.reserve(kFrameHeaderBytes + frame.payload.size());
  AppendFrame(out, frame);
  return out;
}

FrameDecoder::FrameDecoder(std::size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Append(std::string_view bytes) {
  // Compact lazily: drop the consumed prefix once it dominates the buffer,
  // so steady-state decoding is append + in-place scans, not per-frame
  // reallocation.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

std::optional<FrameDecoder::Item> FrameDecoder::Next() {
  // Finish skipping the body of a previously rejected frame.
  if (skip_remaining_ > 0) {
    const std::size_t available = buffer_.size() - consumed_;
    const std::size_t drop = std::min(skip_remaining_, available);
    consumed_ += drop;
    skip_remaining_ -= drop;
    if (skip_remaining_ > 0) return std::nullopt;  // need more bytes
  }

  const std::string_view pending =
      std::string_view(buffer_).substr(consumed_);
  if (pending.size() < kFrameHeaderBytes) return std::nullopt;

  const std::uint32_t length = ReadLittleEndian<std::uint32_t>(pending, 0);
  const std::uint8_t kind_byte =
      static_cast<std::uint8_t>(static_cast<unsigned char>(pending[4]));
  const std::uint8_t flags =
      static_cast<std::uint8_t>(static_cast<unsigned char>(pending[5]));
  const std::uint16_t sequence = ReadLittleEndian<std::uint16_t>(pending, 6);
  const bool sequenced = (flags & kFrameFlagSequenced) != 0;

  const bool known_kind = kind_byte == static_cast<std::uint8_t>(FrameKind::kJson) ||
                          kind_byte == static_cast<std::uint8_t>(FrameKind::kBinary);
  // Error replies to a broken frame should still reach the client in an
  // encoding it understands; fall back to JSON when the kind itself is
  // the problem.
  const FrameKind reply_kind =
      known_kind ? static_cast<FrameKind>(kind_byte) : FrameKind::kJson;

  Status error;
  if (!known_kind) {
    error = Status::InvalidArgument(
        StrFormat("unknown frame kind %u (expected 1=json, 2=binary)",
                  static_cast<unsigned>(kind_byte)));
  } else if ((flags & ~kFrameFlagSequenced) != 0) {
    error = Status::InvalidArgument(
        StrFormat("unknown frame flags 0x%02x", static_cast<unsigned>(flags)));
  } else if (!sequenced && sequence != 0) {
    // Pre-sequencing peers sent four zero bytes here; keep rejecting the
    // garbage they would have been rejected for, with the same message.
    error = Status::InvalidArgument("frame reserved bytes must be zero");
  } else if (length > max_frame_bytes_) {
    error = Status::InvalidArgument(
        StrFormat("frame of %u bytes exceeds the %zu-byte limit",
                  static_cast<unsigned>(length), max_frame_bytes_));
  }

  if (!error.ok()) {
    // Skip exactly the declared body so the next frame stays parseable.
    consumed_ += kFrameHeaderBytes;
    skip_remaining_ = length;
    const std::size_t available = buffer_.size() - consumed_;
    const std::size_t drop = std::min(skip_remaining_, available);
    consumed_ += drop;
    skip_remaining_ -= drop;
    Item item;
    item.error = std::move(error);
    item.kind = reply_kind;
    // Echo the declared tag even on failure (when the flags byte itself
    // parsed) so a pipelining client can match the error to its request.
    item.sequenced = sequenced && (flags & ~kFrameFlagSequenced) == 0;
    item.sequence = item.sequenced ? sequence : std::uint16_t{0};
    return item;
  }

  if (pending.size() < kFrameHeaderBytes + length) return std::nullopt;

  Item item;
  item.kind = static_cast<FrameKind>(kind_byte);
  item.sequenced = sequenced;
  item.sequence = sequenced ? sequence : std::uint16_t{0};
  item.frame.kind = item.kind;
  item.frame.sequenced = item.sequenced;
  item.frame.sequence = item.sequence;
  item.frame.payload.assign(pending.substr(kFrameHeaderBytes, length));
  consumed_ += kFrameHeaderBytes + length;
  return item;
}

}  // namespace cpa::server
