#include "server/binary_codec.h"

#include <cstdint>
#include <utility>

#include "util/endian.h"
#include "util/string_utils.h"

namespace cpa::server {
namespace {

/// Wire message types (first body byte).
enum : std::uint8_t {
  kMsgObserveRequest = kBinaryMsgObserveRequest,
  kMsgSnapshotRequest = kBinaryMsgSnapshotRequest,
  kMsgFinalizeRequest = kBinaryMsgFinalizeRequest,
  kMsgCheckpointRequest = kBinaryMsgCheckpointRequest,
  kMsgRestoreRequest = kBinaryMsgRestoreRequest,
  kMsgObserveAck = 0x81,
  kMsgSnapshotResponse = 0x82,
  kMsgCheckpointResponse = 0x84,
  kMsgRestoreAck = 0x85,
  kMsgError = 0x7F,
};

/// Snapshot/finalize request flag bits.
enum : std::uint8_t {
  kFlagRefresh = 1u << 0,
  kFlagIncludePredictions = 1u << 1,
};

void AppendString16(std::string& out, std::string_view text) {
  AppendLittleEndian<std::uint16_t>(out, static_cast<std::uint16_t>(text.size()));
  out.append(text);
}

/// A bounds-checked sequential reader over a message body.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  template <typename T>
  Result<T> Read() {
    if (bytes_.size() - offset_ < sizeof(T)) return Truncated();
    const T value = ReadLittleEndian<T>(bytes_, offset_);
    offset_ += sizeof(T);
    return value;
  }

  Result<double> ReadDouble() {
    if (bytes_.size() - offset_ < sizeof(double)) return Truncated();
    const double value = ReadLittleEndianDouble(bytes_, offset_);
    offset_ += sizeof(double);
    return value;
  }

  /// u16-length-prefixed string.
  Result<std::string> ReadString16() {
    CPA_ASSIGN_OR_RETURN(std::uint16_t length, Read<std::uint16_t>());
    return ReadBytes(length);
  }

  /// u32-length-prefixed string.
  Result<std::string> ReadString32() {
    CPA_ASSIGN_OR_RETURN(std::uint32_t length, Read<std::uint32_t>());
    return ReadBytes(length);
  }

  Result<LabelSet> ReadLabelSet() {
    CPA_ASSIGN_OR_RETURN(std::uint16_t count, Read<std::uint16_t>());
    std::vector<LabelId> labels;
    labels.reserve(count);
    for (std::uint16_t i = 0; i < count; ++i) {
      CPA_ASSIGN_OR_RETURN(std::uint32_t label, Read<std::uint32_t>());
      labels.push_back(label);
    }
    return LabelSet::FromUnsorted(std::move(labels));
  }

  /// Decoding must consume the body exactly — trailing bytes mean the
  /// sender and receiver disagree about the layout.
  Status ExpectEnd() const {
    if (offset_ != bytes_.size()) {
      return Status::InvalidArgument(StrFormat(
          "binary message has %zu trailing bytes", bytes_.size() - offset_));
    }
    return Status::OK();
  }

  std::size_t remaining() const { return bytes_.size() - offset_; }

 private:
  Status Truncated() const {
    return Status::InvalidArgument("binary message truncated");
  }

  Result<std::string> ReadBytes(std::size_t length) {
    if (bytes_.size() - offset_ < length) return Truncated();
    std::string value(bytes_.substr(offset_, length));
    offset_ += length;
    return value;
  }

  std::string_view bytes_;
  std::size_t offset_ = 0;
};

void AppendLabelSet(std::string& out, const LabelSet& labels) {
  AppendLittleEndian<std::uint16_t>(out,
                                    static_cast<std::uint16_t>(labels.size()));
  for (LabelId label : labels) AppendLittleEndian<std::uint32_t>(out, label);
}

std::string EncodeSnapshotLikeRequest(std::uint8_t type, std::string_view session,
                                      std::uint8_t flags) {
  std::string out;
  out.push_back(static_cast<char>(type));
  AppendString16(out, session);
  out.push_back(static_cast<char>(flags));
  return out;
}

Result<Request::Op> OpFromWire(std::uint8_t op_byte) {
  switch (op_byte) {
    case kMsgSnapshotRequest: return Request::Op::kSnapshot;
    case kMsgFinalizeRequest: return Request::Op::kFinalize;
    default:
      return Status::InvalidArgument(
          StrFormat("invalid snapshot-response op byte 0x%02x",
                    static_cast<unsigned>(op_byte)));
  }
}

}  // namespace

std::string EncodeObserveRequest(std::string_view session,
                                 std::span<const Answer> answers) {
  std::string out;
  out.push_back(static_cast<char>(kMsgObserveRequest));
  AppendString16(out, session);
  AppendLittleEndian<std::uint32_t>(out,
                                    static_cast<std::uint32_t>(answers.size()));
  for (const Answer& answer : answers) {
    AppendLittleEndian<std::uint32_t>(out, answer.item);
    AppendLittleEndian<std::uint32_t>(out, answer.worker);
    AppendLabelSet(out, answer.labels);
  }
  return out;
}

std::string EncodeSnapshotRequest(std::string_view session, bool refresh,
                                  bool include_predictions) {
  std::uint8_t flags = 0;
  if (refresh) flags |= kFlagRefresh;
  if (include_predictions) flags |= kFlagIncludePredictions;
  return EncodeSnapshotLikeRequest(kMsgSnapshotRequest, session, flags);
}

std::string EncodeFinalizeRequest(std::string_view session,
                                  bool include_predictions) {
  std::uint8_t flags = 0;
  if (include_predictions) flags |= kFlagIncludePredictions;
  return EncodeSnapshotLikeRequest(kMsgFinalizeRequest, session, flags);
}

std::string EncodeCheckpointRequest(std::string_view session) {
  std::string out;
  out.push_back(static_cast<char>(kMsgCheckpointRequest));
  AppendString16(out, session);
  return out;
}

std::string EncodeRestoreRequest(std::string_view session,
                                 std::string_view state) {
  std::string out;
  out.push_back(static_cast<char>(kMsgRestoreRequest));
  AppendString16(out, session);
  AppendLittleEndian<std::uint32_t>(out,
                                    static_cast<std::uint32_t>(state.size()));
  out.append(state);
  return out;
}

Result<Request> DecodeBinaryRequest(std::string_view body) {
  Reader reader(body);
  CPA_ASSIGN_OR_RETURN(std::uint8_t type, reader.Read<std::uint8_t>());
  Request request;
  switch (type) {
    case kMsgObserveRequest: {
      request.op = Request::Op::kObserve;
      CPA_ASSIGN_OR_RETURN(request.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(std::uint32_t count, reader.Read<std::uint32_t>());
      // A count that cannot fit in the remaining bytes (each answer is at
      // least 10 bytes) is rejected before reserving anything.
      if (count > reader.remaining() / 10) {
        return Status::InvalidArgument("binary observe answer count overruns body");
      }
      request.answers.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        Answer answer;
        CPA_ASSIGN_OR_RETURN(std::uint32_t item, reader.Read<std::uint32_t>());
        CPA_ASSIGN_OR_RETURN(std::uint32_t worker, reader.Read<std::uint32_t>());
        answer.item = item;
        answer.worker = worker;
        CPA_ASSIGN_OR_RETURN(answer.labels, reader.ReadLabelSet());
        request.answers.push_back(std::move(answer));
      }
      break;
    }
    case kMsgSnapshotRequest:
    case kMsgFinalizeRequest: {
      request.op = type == kMsgSnapshotRequest ? Request::Op::kSnapshot
                                               : Request::Op::kFinalize;
      CPA_ASSIGN_OR_RETURN(request.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(std::uint8_t flags, reader.Read<std::uint8_t>());
      request.refresh = (flags & kFlagRefresh) != 0;
      request.include_predictions = (flags & kFlagIncludePredictions) != 0;
      break;
    }
    case kMsgCheckpointRequest: {
      request.op = Request::Op::kCheckpoint;
      CPA_ASSIGN_OR_RETURN(request.session, reader.ReadString16());
      break;
    }
    case kMsgRestoreRequest: {
      request.op = Request::Op::kRestore;
      CPA_ASSIGN_OR_RETURN(request.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(request.state, reader.ReadString32());
      break;
    }
    default:
      return Status::InvalidArgument(StrFormat(
          "unknown binary request type 0x%02x (binary carries observe/"
          "snapshot/finalize/checkpoint/restore; use JSON frames for "
          "control ops)",
          static_cast<unsigned>(type)));
  }
  // Restore may omit the session (the id saved in the blob wins); every
  // other binary op addresses an existing session and must name it.
  if (request.session.empty() && request.op != Request::Op::kRestore) {
    return Status::InvalidArgument(
        StrFormat("op '%s' requires a non-empty session",
                  std::string(OpName(request.op)).c_str()));
  }
  CPA_RETURN_NOT_OK(reader.ExpectEnd());
  return request;
}

std::string EncodeBinaryError(std::string_view op, std::string_view session,
                              const Status& status) {
  std::string out;
  out.push_back(static_cast<char>(kMsgError));
  out.push_back(static_cast<char>(status.code()));
  AppendString16(out, op);
  AppendString16(out, session);
  AppendLittleEndian<std::uint32_t>(
      out, static_cast<std::uint32_t>(status.message().size()));
  out.append(status.message());
  return out;
}

std::string EncodeBinaryResponse(const Response& response) {
  std::string out;
  if (!response.status.ok()) {
    return EncodeBinaryError(OpName(response.op), response.session,
                             response.status);
  }
  if (response.op == Request::Op::kObserve) {
    out.push_back(static_cast<char>(kMsgObserveAck));
    AppendString16(out, response.session);
    AppendLittleEndian<std::uint64_t>(out, response.ack.batches_seen);
    AppendLittleEndian<std::uint64_t>(out, response.ack.answers_seen);
    AppendLittleEndian<std::uint64_t>(out, response.ack.delta.changed_items);
    AppendLittleEndian<std::uint64_t>(out, response.ack.delta.snapshot_batches_seen);
    AppendLittleEndian<std::uint64_t>(out, response.ack.delta.snapshot_answers_seen);
    return out;
  }
  if (response.op == Request::Op::kCheckpoint) {
    out.push_back(static_cast<char>(kMsgCheckpointResponse));
    AppendString16(out, response.session);
    AppendLittleEndian<std::uint32_t>(
        out, static_cast<std::uint32_t>(response.state.size()));
    out.append(response.state);
    return out;
  }
  if (response.op == Request::Op::kRestore) {
    out.push_back(static_cast<char>(kMsgRestoreAck));
    AppendString16(out, response.session);
    AppendLittleEndian<std::uint64_t>(out, response.ack.batches_seen);
    AppendLittleEndian<std::uint64_t>(out, response.ack.answers_seen);
    return out;
  }
  // snapshot / finalize — the only other ops a binary request can reach.
  const ConsensusSnapshot& snapshot = *response.snapshot;
  out.push_back(static_cast<char>(kMsgSnapshotResponse));
  out.push_back(static_cast<char>(response.op == Request::Op::kFinalize
                                      ? kMsgFinalizeRequest
                                      : kMsgSnapshotRequest));
  AppendString16(out, response.session);
  AppendString16(out, snapshot.method);
  AppendLittleEndian<std::uint64_t>(out, snapshot.batches_seen);
  AppendLittleEndian<std::uint64_t>(out, snapshot.answers_seen);
  AppendLittleEndian<std::uint64_t>(out, snapshot.fit_stats.iterations);
  AppendLittleEndianDouble(out, snapshot.learning_rate);
  out.push_back(snapshot.finalized ? '\x01' : '\x00');
  out.push_back(response.include_predictions ? '\x01' : '\x00');
  if (response.include_predictions) {
    // The hot path this codec exists for: one flat pass over the label
    // sets, no string formatting, no per-label JSON nodes.
    AppendLittleEndian<std::uint32_t>(
        out, static_cast<std::uint32_t>(snapshot.predictions.size()));
    for (const LabelSet& labels : snapshot.predictions) {
      AppendLabelSet(out, labels);
    }
  }
  return out;
}

Result<BinaryResponse> DecodeBinaryResponse(std::string_view body) {
  Reader reader(body);
  CPA_ASSIGN_OR_RETURN(std::uint8_t type, reader.Read<std::uint8_t>());
  BinaryResponse response;
  switch (type) {
    case kMsgError: {
      response.ok = false;
      CPA_ASSIGN_OR_RETURN(std::uint8_t code, reader.Read<std::uint8_t>());
      CPA_ASSIGN_OR_RETURN(response.error_op, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(std::string message, reader.ReadString32());
      if (code > static_cast<std::uint8_t>(StatusCode::kIOError)) {
        return Status::InvalidArgument("binary error reply carries unknown code");
      }
      response.error = Status(static_cast<StatusCode>(code), std::move(message));
      break;
    }
    case kMsgObserveAck: {
      response.op = Request::Op::kObserve;
      CPA_ASSIGN_OR_RETURN(response.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.ack.batches_seen, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.ack.answers_seen, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.ack.delta.changed_items,
                           reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.ack.delta.snapshot_batches_seen,
                           reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.ack.delta.snapshot_answers_seen,
                           reader.Read<std::uint64_t>());
      break;
    }
    case kMsgSnapshotResponse: {
      CPA_ASSIGN_OR_RETURN(std::uint8_t op_byte, reader.Read<std::uint8_t>());
      CPA_ASSIGN_OR_RETURN(response.op, OpFromWire(op_byte));
      CPA_ASSIGN_OR_RETURN(response.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.method, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.batches_seen, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.answers_seen, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.iterations, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.learning_rate, reader.ReadDouble());
      CPA_ASSIGN_OR_RETURN(std::uint8_t finalized, reader.Read<std::uint8_t>());
      CPA_ASSIGN_OR_RETURN(std::uint8_t has_predictions,
                           reader.Read<std::uint8_t>());
      response.finalized = finalized != 0;
      response.has_predictions = has_predictions != 0;
      if (response.has_predictions) {
        CPA_ASSIGN_OR_RETURN(std::uint32_t items, reader.Read<std::uint32_t>());
        if (items > reader.remaining() / 2) {
          return Status::InvalidArgument(
              "binary snapshot item count overruns body");
        }
        response.predictions.reserve(items);
        for (std::uint32_t i = 0; i < items; ++i) {
          CPA_ASSIGN_OR_RETURN(LabelSet labels, reader.ReadLabelSet());
          response.predictions.push_back(std::move(labels));
        }
      }
      break;
    }
    case kMsgCheckpointResponse: {
      response.op = Request::Op::kCheckpoint;
      CPA_ASSIGN_OR_RETURN(response.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.state, reader.ReadString32());
      break;
    }
    case kMsgRestoreAck: {
      response.op = Request::Op::kRestore;
      CPA_ASSIGN_OR_RETURN(response.session, reader.ReadString16());
      CPA_ASSIGN_OR_RETURN(response.ack.batches_seen, reader.Read<std::uint64_t>());
      CPA_ASSIGN_OR_RETURN(response.ack.answers_seen, reader.Read<std::uint64_t>());
      break;
    }
    default:
      return Status::InvalidArgument(StrFormat(
          "unknown binary response type 0x%02x", static_cast<unsigned>(type)));
  }
  CPA_RETURN_NOT_OK(reader.ExpectEnd());
  return response;
}

}  // namespace cpa::server
