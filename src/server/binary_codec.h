#ifndef CPA_SERVER_BINARY_CODEC_H_
#define CPA_SERVER_BINARY_CODEC_H_

/// \file binary_codec.h
/// \brief Compact binary encoding of the hot wire messages.
///
/// JSON serialization of large prediction payloads is the server's known
/// CPU sink at high poll rates (ROADMAP). This codec encodes the hot ops —
/// `observe`, `snapshot`, `finalize` and their responses — as flat
/// little-endian records inside `kBinary` frames (framing.h). The cold
/// control ops (`open`, `list`, `methods`, `close`) stay JSON-framed: they
/// run once per session, carry nested config/metadata, and keep the
/// protocol debuggable. Encoding is negotiated per frame by the frame's
/// kind byte — the server always answers in the encoding of the request.
///
/// All integers are little-endian. Strings are a u16 length + UTF-8 bytes
/// (the error message uses u32). Wire layout (first body byte = type):
///
///   0x01 observe request    session, u32 count, {u32 item, u32 worker,
///                           u16 n, u32 label×n}×count
///   0x02 snapshot request   session, u8 flags (bit0 refresh,
///                           bit1 include predictions)
///   0x03 finalize request   session, u8 flags (bit1 include predictions)
///   0x04 checkpoint request session
///   0x05 restore request    session (may be empty: restore under the id
///                           saved in the blob), u32-len state blob
///   0x81 observe ack        session, u64 batches_seen, u64 answers_seen,
///                           u64 changed_items, u64 snapshot_batches_seen,
///                           u64 snapshot_answers_seen
///   0x82 snapshot response  u8 op (2|3), session, method,
///                           u64 batches_seen, u64 answers_seen,
///                           u64 iterations, f64 learning_rate,
///                           u8 finalized, u8 has_predictions,
///                           [u32 items, {u16 n, u32 label×n}×items]
///   0x84 checkpoint resp    session, u32-len state blob
///   0x85 restore ack        session, u64 batches_seen, u64 answers_seen
///   0x7F error response     u8 status code, op, session, u32-len message
///
/// Every decoder is bounds-checked and returns InvalidArgument on
/// truncated or malformed input — a bad payload costs one error reply,
/// never a crash (tests/server/binary_codec_test.cc). The JSON and binary
/// encodings of the same `Request`/`Response` are asserted equivalent in
/// the same suite; docs/API.md carries the normative spec.

#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "data/answer_matrix.h"
#include "server/protocol.h"
#include "util/status.h"

namespace cpa::server {

/// Binary request layout shared with the router (router.cc peeks the type
/// byte and the session that follows it without a full decode): every
/// request body starts `u8 type, u16 session length, session bytes`.
inline constexpr std::uint8_t kBinaryMsgObserveRequest = 0x01;
inline constexpr std::uint8_t kBinaryMsgSnapshotRequest = 0x02;
inline constexpr std::uint8_t kBinaryMsgFinalizeRequest = 0x03;
inline constexpr std::uint8_t kBinaryMsgCheckpointRequest = 0x04;
inline constexpr std::uint8_t kBinaryMsgRestoreRequest = 0x05;

/// \name Request encoding (client side).
/// @{

/// Encodes an `observe` request body for `session`.
std::string EncodeObserveRequest(std::string_view session,
                                 std::span<const Answer> answers);

/// Encodes a `snapshot` request body.
std::string EncodeSnapshotRequest(std::string_view session, bool refresh,
                                  bool include_predictions);

/// Encodes a `finalize` request body.
std::string EncodeFinalizeRequest(std::string_view session,
                                  bool include_predictions);

/// Encodes a `checkpoint` request body.
std::string EncodeCheckpointRequest(std::string_view session);

/// Encodes a `restore` request body. `session` may be empty (restore under
/// the id recorded in the blob); `state` is the raw checkpoint blob.
std::string EncodeRestoreRequest(std::string_view session,
                                 std::string_view state);

/// @}

/// Decodes a binary request body (server side). Only the hot ops exist in
/// binary; anything else fails with InvalidArgument.
Result<Request> DecodeBinaryRequest(std::string_view body);

/// Encodes a dispatched `Response` as a binary body. Error responses
/// encode for any op; OK responses must be observe/snapshot/finalize
/// (the only ops a binary request can produce).
std::string EncodeBinaryResponse(const Response& response);

/// Encodes an error reply directly — for failures before a request could
/// be dispatched (frame or parse errors), where no `Response` exists.
/// Empty `op` marks "could not parse a request".
std::string EncodeBinaryError(std::string_view op, std::string_view session,
                              const Status& status);

/// \brief A decoded binary response (client side: bench, tests, smoke).
struct BinaryResponse {
  Request::Op op = Request::Op::kObserve;
  bool ok = true;
  std::string session;

  /// Error replies (`ok == false`): the status plus the wire name of the
  /// op that failed ("" when the server could not even parse one).
  Status error;
  std::string error_op;

  /// Observe acks.
  ObserveAck ack;

  /// Snapshot/finalize responses.
  std::string method;
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;
  std::size_t iterations = 0;
  double learning_rate = 0.0;
  bool finalized = false;
  bool has_predictions = false;
  std::vector<LabelSet> predictions;

  /// Checkpoint responses: the raw state blob. Restore acks reuse `ack`
  /// (batches/answers of the restored session).
  std::string state;
};

/// Decodes a binary response body.
Result<BinaryResponse> DecodeBinaryResponse(std::string_view body);

}  // namespace cpa::server

#endif  // CPA_SERVER_BINARY_CODEC_H_
