#include "server/consensus_server.h"

#include <istream>
#include <ostream>
#include <utility>

#include "engine/engine_registry.h"
#include "server/binary_codec.h"

namespace cpa {

using server::Frame;
using server::FrameKind;
using server::Request;
using server::Response;

ConsensusServer::ConsensusServer(const ConsensusServerOptions& options)
    : options_(options), sessions_(options.sessions) {}

Response ConsensusServer::Handle(const Request& request) {
  if (options_.idle_timeout_seconds > 0.0) {
    sessions_.ExpireIdle(options_.idle_timeout_seconds);
  }
  Response response;
  response.op = request.op;
  response.session = request.session;
  response.include_predictions = request.include_predictions;
  switch (request.op) {
    case Request::Op::kOpen: {
      Result<std::string> id = sessions_.Open(request.config, request.session);
      if (!id.ok()) {
        response.status = id.status();
        return response;
      }
      response.session = id.value();
      response.method = request.config.method;
      return response;
    }
    case Request::Op::kObserve: {
      Result<ObserveAck> ack = sessions_.Observe(request.session, request.answers);
      if (!ack.ok()) {
        response.status = ack.status();
        return response;
      }
      response.ack = ack.value();
      return response;
    }
    case Request::Op::kSnapshot:
    case Request::Op::kFinalize: {
      Result<SharedSnapshot> snapshot =
          request.op == Request::Op::kFinalize
              ? sessions_.Finalize(request.session)
              : sessions_.Snapshot(request.session, request.refresh);
      if (!snapshot.ok()) {
        response.status = snapshot.status();
        return response;
      }
      response.snapshot = std::move(snapshot).value();
      return response;
    }
    case Request::Op::kClose: {
      response.status = sessions_.Close(request.session);
      return response;
    }
    case Request::Op::kList: {
      response.sessions = sessions_.List();
      return response;
    }
    case Request::Op::kMethods: {
      response.methods = EngineRegistry::Global().MethodNames();
      return response;
    }
    case Request::Op::kCheckpoint: {
      Result<std::string> state = sessions_.Checkpoint(request.session);
      if (!state.ok()) {
        response.status = state.status();
        return response;
      }
      response.state = std::move(state).value();
      return response;
    }
    case Request::Op::kRestore: {
      Result<RestoreAck> ack =
          sessions_.Restore(request.state, request.session);
      if (!ack.ok()) {
        response.status = ack.status();
        return response;
      }
      response.session = ack.value().session_id;
      response.ack.batches_seen = ack.value().batches_seen;
      response.ack.answers_seen = ack.value().answers_seen;
      return response;
    }
  }
  response.status = Status::Internal("unhandled op");
  return response;
}

std::string ConsensusServer::HandleLine(std::string_view line) {
  Result<Request> request = server::ParseRequest(line);
  if (!request.ok()) {
    return server::ErrorResponse("", "", request.status());
  }
  return server::EncodeJsonResponse(Handle(request.value()));
}

Frame ConsensusServer::HandleFrame(const Frame& frame) {
  if (frame.kind == FrameKind::kJson) {
    return Frame{FrameKind::kJson, HandleLine(frame.payload)};
  }
  if (!options_.accept_binary) {
    return Frame{FrameKind::kBinary,
                 server::EncodeBinaryError(
                     "", "",
                     Status::FailedPrecondition(
                         "server runs with --transport json; binary frames "
                         "are disabled"))};
  }
  Result<Request> request = server::DecodeBinaryRequest(frame.payload);
  if (!request.ok()) {
    return Frame{FrameKind::kBinary,
                 server::EncodeBinaryError("", "", request.status())};
  }
  return Frame{FrameKind::kBinary,
               server::EncodeBinaryResponse(Handle(request.value()))};
}

void ConsensusServer::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << HandleLine(line) << '\n';
    out.flush();
  }
}

}  // namespace cpa
