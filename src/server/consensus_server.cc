#include "server/consensus_server.h"

#include <istream>
#include <ostream>
#include <utility>

#include "engine/engine_registry.h"

namespace cpa {

using server::OkResponse;
using server::OpName;
using server::Request;

ConsensusServer::ConsensusServer(const ConsensusServerOptions& options)
    : options_(options), sessions_(options.sessions) {}

std::string ConsensusServer::HandleLine(std::string_view line) {
  Result<Request> request = server::ParseRequest(line);
  if (!request.ok()) {
    return server::ErrorResponse("", "", request.status());
  }
  if (options_.idle_timeout_seconds > 0.0) {
    sessions_.ExpireIdle(options_.idle_timeout_seconds);
  }
  return Dispatch(request.value());
}

std::string ConsensusServer::Dispatch(const Request& request) {
  const std::string_view op = OpName(request.op);
  switch (request.op) {
    case Request::Op::kOpen: {
      Result<std::string> id = sessions_.Open(request.config, request.session);
      if (!id.ok()) return server::ErrorResponse(op, request.session, id.status());
      JsonValue::Object fields;
      fields["session"] = JsonValue(id.value());
      fields["method"] = JsonValue(request.config.method);
      return OkResponse(op, std::move(fields));
    }
    case Request::Op::kObserve: {
      Result<ObserveAck> ack = sessions_.Observe(request.session, request.answers);
      if (!ack.ok()) return server::ErrorResponse(op, request.session, ack.status());
      JsonValue::Object fields;
      fields["session"] = JsonValue(request.session);
      fields["batches_seen"] =
          JsonValue(static_cast<double>(ack.value().batches_seen));
      fields["answers_seen"] =
          JsonValue(static_cast<double>(ack.value().answers_seen));
      // The cheap consensus delta (docs/API.md): staleness of the published
      // snapshot + how much the consensus moved at the last refresh.
      const ConsensusDelta& delta = ack.value().delta;
      fields["changed_items"] = JsonValue(static_cast<double>(delta.changed_items));
      fields["snapshot_batches_seen"] =
          JsonValue(static_cast<double>(delta.snapshot_batches_seen));
      fields["snapshot_answers_seen"] =
          JsonValue(static_cast<double>(delta.snapshot_answers_seen));
      return OkResponse(op, std::move(fields));
    }
    case Request::Op::kSnapshot:
    case Request::Op::kFinalize: {
      Result<SharedSnapshot> snapshot =
          request.op == Request::Op::kFinalize
              ? sessions_.Finalize(request.session)
              : sessions_.Snapshot(request.session, request.refresh);
      if (!snapshot.ok()) {
        return server::ErrorResponse(op, request.session, snapshot.status());
      }
      JsonValue::Object fields =
          server::SnapshotFields(*snapshot.value(), request.include_predictions);
      fields["session"] = JsonValue(request.session);
      return OkResponse(op, std::move(fields));
    }
    case Request::Op::kClose: {
      const Status status = sessions_.Close(request.session);
      if (!status.ok()) return server::ErrorResponse(op, request.session, status);
      JsonValue::Object fields;
      fields["session"] = JsonValue(request.session);
      return OkResponse(op, std::move(fields));
    }
    case Request::Op::kList: {
      JsonValue::Array rows;
      for (const SessionInfo& info : sessions_.List()) {
        rows.push_back(server::SessionInfoToJson(info));
      }
      JsonValue::Object fields;
      fields["sessions"] = JsonValue(std::move(rows));
      return OkResponse(op, std::move(fields));
    }
    case Request::Op::kMethods: {
      JsonValue::Array names;
      for (const std::string& name : EngineRegistry::Global().MethodNames()) {
        names.push_back(JsonValue(name));
      }
      JsonValue::Object fields;
      fields["methods"] = JsonValue(std::move(names));
      return OkResponse(op, std::move(fields));
    }
  }
  return server::ErrorResponse("", "", Status::Internal("unhandled op"));
}

void ConsensusServer::Serve(std::istream& in, std::ostream& out) {
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    out << HandleLine(line) << '\n';
    out.flush();
  }
}

}  // namespace cpa
