#include "server/server_scheduler.h"

#include <utility>

#include "util/logging.h"

namespace cpa {

/// Per-lane task buffer; guarded by the scheduler's mutex.
struct ServerScheduler::Lane::Queue {
  std::deque<std::function<void()>> tasks;
};

ServerScheduler::Lane::~Lane() { scheduler_->Unregister(queue_); }

void ServerScheduler::Lane::Submit(std::function<void()> task) {
  scheduler_->Enqueue(queue_, std::move(task));
}

std::size_t ServerScheduler::Lane::num_threads() const {
  return scheduler_->num_threads();
}

ServerScheduler::ServerScheduler(std::size_t num_threads) : pool_(num_threads) {}

ServerScheduler::~ServerScheduler() {
  std::lock_guard<std::mutex> lock(mutex_);
  CPA_CHECK(lanes_.empty()) << "ServerScheduler destroyed with live lanes";
}

std::unique_ptr<ServerScheduler::Lane> ServerScheduler::CreateLane() {
  auto queue = std::make_unique<Lane::Queue>();
  Lane::Queue* raw = queue.get();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    lanes_.push_back(std::move(queue));
  }
  return std::unique_ptr<Lane>(new Lane(this, raw));
}

std::size_t ServerScheduler::num_lanes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lanes_.size();
}

void ServerScheduler::Enqueue(Lane::Queue* queue, std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue->tasks.push_back(std::move(task));
  }
  // One anonymous drain call per task keeps the pool's pending count equal
  // to the number of buffered tasks; which lane a drain serves is decided
  // at run time, in round-robin order.
  pool_.Submit([this] { RunNext(); });
}

void ServerScheduler::Unregister(Lane::Queue* queue) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (lanes_[i].get() != queue) continue;
    // An idle lane (the documented destruction precondition) has an empty
    // buffer; any leftover tasks are dropped and their drain calls below
    // simply find nothing.
    lanes_.erase(lanes_.begin() + static_cast<std::ptrdiff_t>(i));
    if (cursor_ > i) --cursor_;
    if (!lanes_.empty()) cursor_ %= lanes_.size();
    return;
  }
  CPA_CHECK(false) << "lane not registered";
}

void ServerScheduler::RunNext() {
  std::function<void()> task;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const std::size_t n = lanes_.size();
    for (std::size_t k = 0; k < n; ++k) {
      Lane::Queue* queue = lanes_[(cursor_ + k) % n].get();
      if (queue->tasks.empty()) continue;
      task = std::move(queue->tasks.front());
      queue->tasks.pop_front();
      cursor_ = (cursor_ + k + 1) % n;
      break;
    }
  }
  if (task) task();
}

}  // namespace cpa
