#include "server/transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/string_utils.h"

namespace cpa::server_internal {

Status BindAndListen(const TransportOptions& options, ListenSocket* out) {
  if (!options.unix_path.empty()) {
    sockaddr_un address{};
    if (options.unix_path.size() >= sizeof(address.sun_path)) {
      return Status::InvalidArgument(
          StrFormat("unix socket path too long (%zu bytes, max %zu)",
                    options.unix_path.size(), sizeof(address.sun_path) - 1));
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
    }
    address.sun_family = AF_UNIX;
    std::memcpy(address.sun_path, options.unix_path.c_str(),
                options.unix_path.size() + 1);
    // A socket file left behind by a dead server would make bind fail
    // with EADDRINUSE forever; unlink it first. A *live* server's file
    // is replaced too — matching SO_REUSEADDR semantics on the TCP path.
    ::unlink(options.unix_path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&address),
               sizeof(address)) < 0) {
      const Status status =
          Status::IOError(StrFormat("bind %s: %s", options.unix_path.c_str(),
                                    std::strerror(errno)));
      ::close(fd);
      return status;
    }
    if (::listen(fd, options.listen_backlog) < 0) {
      const Status status =
          Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
      ::close(fd);
      ::unlink(options.unix_path.c_str());
      return status;
    }
    out->fd = fd;
    out->port = 0;
    return Status::OK();
  }

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &address.sin_addr) !=
      1) {
    ::close(fd);
    return Status::InvalidArgument(
        StrFormat("invalid bind address '%s'", options.bind_address.c_str()));
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof(address)) <
      0) {
    const Status status = Status::IOError(
        StrFormat("bind %s:%u: %s", options.bind_address.c_str(),
                  static_cast<unsigned>(options.port), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, options.listen_backlog) < 0) {
    const Status status =
        Status::IOError(StrFormat("listen: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const Status status =
        Status::IOError(StrFormat("getsockname: %s", std::strerror(errno)));
    ::close(fd);
    return status;
  }
  out->fd = fd;
  out->port = ntohs(bound.sin_port);
  return Status::OK();
}

void ConfigureAcceptedSocket(int fd, const TransportOptions& options) {
  if (options.unix_path.empty()) {
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  if (options.so_sndbuf > 0) {
    ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options.so_sndbuf,
                 sizeof(options.so_sndbuf));
  }
}

}  // namespace cpa::server_internal
