#include "server/protocol.h"

#include <cmath>
#include <utility>

#include "util/string_utils.h"

namespace cpa::server {
namespace {

JsonValue Num(std::size_t value) { return JsonValue(static_cast<double>(value)); }

/// Ids on the wire are 32-bit (data/types.h); anything larger must be
/// rejected, not silently wrapped onto some other entity.
constexpr double kMaxId = 4294967295.0;  // 2^32 - 1

/// Reads a non-negative 32-bit integer field of `object`.
Result<std::size_t> ReadId(const JsonValue& object, const char* key) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr || value->kind() != JsonValue::Kind::kNumber ||
      value->number_value() < 0.0 || value->number_value() > kMaxId ||
      std::floor(value->number_value()) != value->number_value()) {
    return Status::InvalidArgument(StrFormat(
        "answer field '%s' must be a non-negative 32-bit integer", key));
  }
  return static_cast<std::size_t>(value->number_value());
}

Result<Answer> AnswerFromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("each answer must be a JSON object");
  }
  Answer answer;
  CPA_ASSIGN_OR_RETURN(std::size_t item, ReadId(json, "item"));
  CPA_ASSIGN_OR_RETURN(std::size_t worker, ReadId(json, "worker"));
  answer.item = static_cast<ItemId>(item);
  answer.worker = static_cast<WorkerId>(worker);
  const JsonValue* labels = json.Find("labels");
  if (labels == nullptr || labels->kind() != JsonValue::Kind::kArray) {
    return Status::InvalidArgument("answer field 'labels' must be an array");
  }
  std::vector<LabelId> ids;
  ids.reserve(labels->array().size());
  for (const JsonValue& label : labels->array()) {
    if (label.kind() != JsonValue::Kind::kNumber || label.number_value() < 0.0 ||
        label.number_value() > kMaxId ||
        std::floor(label.number_value()) != label.number_value()) {
      return Status::InvalidArgument(
          "answer labels must be non-negative 32-bit integers");
    }
    ids.push_back(static_cast<LabelId>(label.number_value()));
  }
  answer.labels = LabelSet::FromUnsorted(std::move(ids));
  return answer;
}

Result<std::string> ReadSession(const JsonValue& json, Request::Op op) {
  const JsonValue* session = json.Find("session");
  if (session == nullptr || session->kind() != JsonValue::Kind::kString ||
      session->string_value().empty()) {
    return Status::InvalidArgument(
        StrFormat("op '%s' requires a non-empty string field 'session'",
                  std::string(OpName(op)).c_str()));
  }
  return session->string_value();
}

bool ReadFlag(const JsonValue& json, const char* key, bool fallback) {
  const JsonValue* value = json.Find(key);
  return value != nullptr && value->kind() == JsonValue::Kind::kBool
             ? value->bool_value()
             : fallback;
}

}  // namespace

std::string_view OpName(Request::Op op) {
  switch (op) {
    case Request::Op::kOpen: return "open";
    case Request::Op::kObserve: return "observe";
    case Request::Op::kSnapshot: return "snapshot";
    case Request::Op::kFinalize: return "finalize";
    case Request::Op::kClose: return "close";
    case Request::Op::kList: return "list";
    case Request::Op::kMethods: return "methods";
    case Request::Op::kCheckpoint: return "checkpoint";
    case Request::Op::kRestore: return "restore";
  }
  return "unknown";
}

Result<Request> ParseRequest(std::string_view line) {
  CPA_ASSIGN_OR_RETURN(JsonValue json, JsonValue::Parse(line));
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("request must be a JSON object");
  }
  const JsonValue* op = json.Find("op");
  if (op == nullptr || op->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument("request needs a string field 'op'");
  }
  Request request;
  const std::string& name = op->string_value();
  if (name == "open") {
    request.op = Request::Op::kOpen;
    const JsonValue* config = json.Find("config");
    if (config == nullptr) {
      return Status::InvalidArgument("op 'open' requires a 'config' object");
    }
    CPA_ASSIGN_OR_RETURN(request.config, EngineConfig::FromJson(*config));
    if (const JsonValue* session = json.Find("session")) {
      if (session->kind() != JsonValue::Kind::kString) {
        return Status::InvalidArgument("'session' must be a string");
      }
      request.session = session->string_value();
    }
    return request;
  }
  if (name == "observe") {
    request.op = Request::Op::kObserve;
    CPA_ASSIGN_OR_RETURN(request.session, ReadSession(json, request.op));
    const JsonValue* answers = json.Find("answers");
    if (answers == nullptr || answers->kind() != JsonValue::Kind::kArray) {
      return Status::InvalidArgument("op 'observe' requires an 'answers' array");
    }
    request.answers.reserve(answers->array().size());
    for (const JsonValue& answer : answers->array()) {
      CPA_ASSIGN_OR_RETURN(Answer parsed, AnswerFromJson(answer));
      request.answers.push_back(std::move(parsed));
    }
    return request;
  }
  if (name == "snapshot" || name == "finalize") {
    request.op =
        name == "snapshot" ? Request::Op::kSnapshot : Request::Op::kFinalize;
    CPA_ASSIGN_OR_RETURN(request.session, ReadSession(json, request.op));
    request.refresh = ReadFlag(json, "refresh", true);
    request.include_predictions = ReadFlag(json, "predictions", true);
    return request;
  }
  if (name == "close") {
    request.op = Request::Op::kClose;
    CPA_ASSIGN_OR_RETURN(request.session, ReadSession(json, request.op));
    return request;
  }
  if (name == "list") {
    request.op = Request::Op::kList;
    return request;
  }
  if (name == "methods") {
    request.op = Request::Op::kMethods;
    return request;
  }
  if (name == "checkpoint") {
    request.op = Request::Op::kCheckpoint;
    CPA_ASSIGN_OR_RETURN(request.session, ReadSession(json, request.op));
    return request;
  }
  if (name == "restore") {
    request.op = Request::Op::kRestore;
    const JsonValue* state = json.Find("state");
    if (state == nullptr || state->kind() != JsonValue::Kind::kString) {
      return Status::InvalidArgument(
          "op 'restore' requires a base64 string field 'state'");
    }
    CPA_ASSIGN_OR_RETURN(request.state,
                         Base64Decode(state->string_value()));
    if (const JsonValue* session = json.Find("session")) {
      if (session->kind() != JsonValue::Kind::kString) {
        return Status::InvalidArgument("'session' must be a string");
      }
      request.session = session->string_value();
    }
    return request;
  }
  return Status::InvalidArgument(StrFormat(
      "unknown op '%s' (expected open/observe/snapshot/finalize/close/"
      "list/methods/checkpoint/restore)",
      name.c_str()));
}

std::string EncodeJsonResponse(const Response& response) {
  const std::string_view op = OpName(response.op);
  if (!response.status.ok()) {
    return ErrorResponse(op, response.session, response.status);
  }
  JsonValue::Object fields;
  switch (response.op) {
    case Request::Op::kOpen:
      fields["session"] = JsonValue(response.session);
      fields["method"] = JsonValue(response.method);
      break;
    case Request::Op::kObserve: {
      fields["session"] = JsonValue(response.session);
      fields["batches_seen"] = Num(response.ack.batches_seen);
      fields["answers_seen"] = Num(response.ack.answers_seen);
      // The cheap consensus delta (docs/API.md): staleness of the
      // published snapshot + how much the consensus moved at the last
      // refresh.
      const ConsensusDelta& delta = response.ack.delta;
      fields["changed_items"] = Num(delta.changed_items);
      fields["snapshot_batches_seen"] = Num(delta.snapshot_batches_seen);
      fields["snapshot_answers_seen"] = Num(delta.snapshot_answers_seen);
      break;
    }
    case Request::Op::kSnapshot:
    case Request::Op::kFinalize:
      fields = SnapshotFields(*response.snapshot, response.include_predictions);
      fields["session"] = JsonValue(response.session);
      break;
    case Request::Op::kClose:
      fields["session"] = JsonValue(response.session);
      break;
    case Request::Op::kList: {
      JsonValue::Array rows;
      rows.reserve(response.sessions.size());
      for (const SessionInfo& info : response.sessions) {
        rows.push_back(SessionInfoToJson(info));
      }
      fields["sessions"] = JsonValue(std::move(rows));
      break;
    }
    case Request::Op::kMethods: {
      JsonValue::Array names;
      names.reserve(response.methods.size());
      for (const std::string& name : response.methods) {
        names.push_back(JsonValue(name));
      }
      fields["methods"] = JsonValue(std::move(names));
      break;
    }
    case Request::Op::kCheckpoint:
      fields["session"] = JsonValue(response.session);
      fields["state"] = JsonValue(Base64Encode(response.state));
      break;
    case Request::Op::kRestore:
      fields["session"] = JsonValue(response.session);
      fields["batches_seen"] = Num(response.ack.batches_seen);
      fields["answers_seen"] = Num(response.ack.answers_seen);
      break;
  }
  return OkResponse(op, std::move(fields));
}

std::string ErrorResponse(std::string_view op, std::string_view session,
                          const Status& status) {
  JsonValue::Object fields;
  fields["ok"] = JsonValue(false);
  if (!op.empty()) fields["op"] = JsonValue(std::string(op));
  if (!session.empty()) fields["session"] = JsonValue(std::string(session));
  fields["code"] = JsonValue(std::string(StatusCodeToString(status.code())));
  fields["error"] = JsonValue(std::string(status.message()));
  return JsonValue(std::move(fields)).DumpCompact();
}

std::string OkResponse(std::string_view op, JsonValue::Object fields) {
  fields["ok"] = JsonValue(true);
  fields["op"] = JsonValue(std::string(op));
  return JsonValue(std::move(fields)).DumpCompact();
}

JsonValue::Object SnapshotFields(const ConsensusSnapshot& snapshot,
                                 bool include_predictions) {
  JsonValue::Object fields;
  fields["method"] = JsonValue(snapshot.method);
  fields["batches_seen"] = Num(snapshot.batches_seen);
  fields["answers_seen"] = Num(snapshot.answers_seen);
  fields["iterations"] = Num(snapshot.fit_stats.iterations);
  fields["learning_rate"] = JsonValue(snapshot.learning_rate);
  fields["finalized"] = JsonValue(snapshot.finalized);
  if (include_predictions) {
    JsonValue::Array predictions;
    predictions.reserve(snapshot.predictions.size());
    for (const LabelSet& labels : snapshot.predictions) {
      JsonValue::Array row;
      row.reserve(labels.size());
      for (LabelId label : labels) row.push_back(Num(label));
      predictions.push_back(JsonValue(std::move(row)));
    }
    fields["predictions"] = JsonValue(std::move(predictions));
  }
  return fields;
}

JsonValue SessionInfoToJson(const SessionInfo& info) {
  JsonValue::Object fields;
  fields["session"] = JsonValue(info.id);
  fields["method"] = JsonValue(info.method);
  fields["batches_seen"] = Num(info.batches_seen);
  fields["answers_seen"] = Num(info.answers_seen);
  fields["finalized"] = JsonValue(info.finalized);
  fields["idle_seconds"] = JsonValue(info.idle_seconds);
  return JsonValue(std::move(fields));
}

JsonValue AnswerToJson(const Answer& answer) {
  JsonValue::Object fields;
  fields["item"] = Num(answer.item);
  fields["worker"] = Num(answer.worker);
  JsonValue::Array labels;
  labels.reserve(answer.labels.size());
  for (LabelId label : answer.labels) labels.push_back(Num(label));
  fields["labels"] = JsonValue(std::move(labels));
  return JsonValue(std::move(fields));
}

std::string MakeObserveRequest(std::string_view session,
                               std::span<const Answer> answers) {
  JsonValue::Object fields;
  fields["op"] = JsonValue(std::string("observe"));
  fields["session"] = JsonValue(std::string(session));
  JsonValue::Array array;
  array.reserve(answers.size());
  for (const Answer& answer : answers) array.push_back(AnswerToJson(answer));
  fields["answers"] = JsonValue(std::move(array));
  return JsonValue(std::move(fields)).DumpCompact();
}

}  // namespace cpa::server
