#include "server/tcp_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/string_utils.h"

namespace cpa::server {
namespace {

bool SendAllBytes(int fd, std::string_view bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

TcpFrameClient::TcpFrameClient(TcpFrameClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), decoder_(std::move(other.decoder_)) {}

TcpFrameClient& TcpFrameClient::operator=(TcpFrameClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Result<TcpFrameClient> TcpFrameClient::Connect(const std::string& host,
                                               std::uint16_t port,
                                               std::size_t max_frame_bytes) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  sockaddr_in address{};
  address.sin_family = AF_INET;
  address.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &address.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument(StrFormat("invalid host '%s'", host.c_str()));
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    const Status status =
        Status::IOError(StrFormat("connect %s:%u: %s", host.c_str(),
                                  static_cast<unsigned>(port),
                                  std::strerror(errno)));
    ::close(fd);
    return status;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  TcpFrameClient client;
  client.fd_ = fd;
  client.decoder_ = FrameDecoder(max_frame_bytes);
  return client;
}

Result<TcpFrameClient> TcpFrameClient::ConnectUnix(
    const std::string& path, std::size_t max_frame_bytes) {
  sockaddr_un address{};
  if (path.size() >= sizeof(address.sun_path)) {
    return Status::InvalidArgument(
        StrFormat("unix socket path too long (%zu bytes, max %zu)",
                  path.size(), sizeof(address.sun_path) - 1));
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(StrFormat("socket: %s", std::strerror(errno)));
  }
  address.sun_family = AF_UNIX;
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&address),
                sizeof(address)) < 0) {
    const Status status = Status::IOError(
        StrFormat("connect %s: %s", path.c_str(), std::strerror(errno)));
    ::close(fd);
    return status;
  }
  TcpFrameClient client;
  client.fd_ = fd;
  client.decoder_ = FrameDecoder(max_frame_bytes);
  return client;
}

Status TcpFrameClient::Send(FrameKind kind, std::string_view payload) {
  std::string bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(bytes, kind, payload);
  return SendRaw(bytes);
}

Status TcpFrameClient::SendSequenced(FrameKind kind, std::string_view payload,
                                     std::uint16_t sequence) {
  std::string bytes;
  bytes.reserve(kFrameHeaderBytes + payload.size());
  AppendSequencedFrame(bytes, kind, payload, sequence);
  return SendRaw(bytes);
}

Result<bool> TcpFrameClient::NegotiateSequencing() {
  // Any sequenced request works as a probe; `methods` is stateless and
  // cheap. A pre-sequencing server's decoder rejects the nonzero
  // "reserved" bytes with a recoverable, *untagged* error reply — which
  // is precisely the "no" answer.
  CPA_RETURN_NOT_OK(
      SendSequenced(FrameKind::kJson, R"({"op":"methods"})", 1));
  Result<Frame> reply = ReadFrame();
  if (!reply.ok()) return reply.status();
  return reply.value().sequenced && reply.value().sequence == 1;
}

Status TcpFrameClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  if (!SendAllBytes(fd_, bytes)) {
    return Status::IOError(StrFormat("send: %s", std::strerror(errno)));
  }
  return Status::OK();
}

Result<Frame> TcpFrameClient::ReadFrame() {
  if (fd_ < 0) return Status::FailedPrecondition("client is not connected");
  char buffer[64 * 1024];
  for (;;) {
    if (auto item = decoder_.Next()) {
      if (!item->error.ok()) return item->error;
      return std::move(item->frame);
    }
    const ssize_t n = ::recv(fd_, buffer, sizeof(buffer), 0);
    if (n == 0) {
      return Status::IOError("connection closed by server");
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("recv: %s", std::strerror(errno)));
    }
    decoder_.Append(std::string_view(buffer, static_cast<std::size_t>(n)));
  }
}

Result<Frame> TcpFrameClient::Roundtrip(FrameKind kind, std::string_view payload) {
  CPA_RETURN_NOT_OK(Send(kind, payload));
  return ReadFrame();
}

void TcpFrameClient::FinishWrites() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void TcpFrameClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace cpa::server
