/// \file cpa_server_main.cc
/// \brief The `cpa_server` binary: the multi-session consensus server.
///
///   $ cpa_server [--num-threads N] [--max-sessions S] [--idle-timeout SEC]
///                [--tcp] [--port N] [--bind ADDR] [--unix PATH]
///                [--transport json|binary]
///                [--event-loop] [--io-threads N] [--dispatch-threads N]
///                [--max-connections C] [--max-frame-bytes B]
///                [--router --workers ADDR,ADDR,...]
///   $ cpa_server --methods   # list registered methods + simd level, exit
///
/// Without `--tcp`/`--unix` the server speaks line-delimited JSON over
/// stdin/stdout — one JSON request per input line, one JSON response per
/// output line (src/server/protocol.h; full format with transcripts in
/// docs/API.md). Example exchange:
///
///   > {"op":"open","config":{"method":"MV","num_items":2,"num_workers":2,
///      "num_labels":3}}
///   < {"method":"MV","ok":true,"op":"open","session":"s1"}
///   > {"op":"observe","session":"s1","answers":[
///      {"item":0,"worker":0,"labels":[1]}]}
///   < {"answers_seen":1,"batches_seen":1,"ok":true,"op":"observe",...}
///
/// With `--tcp` it binds `--bind`:`--port` (default 127.0.0.1, ephemeral)
/// and serves the same protocol in length-prefixed frames
/// (src/server/framing.h): JSON frames for everything, binary frames
/// (src/server/binary_codec.h) for the hot observe/snapshot/finalize/
/// checkpoint/restore path unless `--transport json` disables them. With
/// `--unix PATH` it listens on a UNIX-domain socket instead (same framed
/// protocol, no TCP stack). `--event-loop` swaps the thread-per-connection
/// listener for the epoll reactor pool (`--io-threads` reactors moving
/// bytes, `--dispatch-threads` handler threads; sequenced frames complete
/// out of order — src/server/event_loop_transport.h). The wire protocol
/// is identical either way. The bound endpoint is announced on stderr as
/// `cpa_server: listening on <addr>`; the process serves until
/// SIGINT/SIGTERM, then drains connections and exits 0. When
/// `--idle-timeout` is set in socket mode, a background sweeper thread
/// expires idle sessions on a timer — abandoned sessions are reaped even
/// when no requests arrive (src/server/idle_sweeper.h).
///
/// With `--router` the process serves no sessions itself: it
/// consistent-hashes each session id onto the `--workers` fleet (plain
/// `cpa_server --tcp` processes, addresses `host:port` or `unix:PATH`)
/// and forwards frames verbatim (src/server/router.h). Clients speak to
/// the router exactly as they would to a single worker.
///
/// Diagnostics go to stderr; stdout carries only stdio-mode responses.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/sweep/simd.h"
#include "engine/engine_registry.h"
#include "server/consensus_server.h"
#include "server/idle_sweeper.h"
#include "server/event_loop_transport.h"
#include "server/router.h"
#include "server/tcp_transport.h"
#include "server/transport.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace {

/// Blocks until SIGINT or SIGTERM arrives. The signals are masked before
/// the transport spawns its threads, so delivery is funneled to this
/// sigwait and never interrupts a handler mid-request.
void WaitForShutdownSignal() {
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  int received = 0;
  sigwait(&signals, &received);
  std::fprintf(stderr, "cpa_server: caught signal %d, draining\n", received);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = cpa::Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();

  if (flags.value().GetBool("methods", false)) {
    // Capability probe for deploy scripts: the registered methods plus the
    // kernel level this binary will run (docs/ARCHITECTURE.md §3c).
    for (const std::string& name :
         cpa::EngineRegistry::Global().MethodNames()) {
      std::printf("%s\n", name.c_str());
    }
    std::printf("%s\n", cpa::simd::SimdReportLine().c_str());
    return 0;
  }

  cpa::ConsensusServerOptions options;
  options.sessions.num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 1));
  options.sessions.max_sessions =
      static_cast<std::size_t>(flags.value().GetInt("max-sessions", 64));
  options.idle_timeout_seconds = flags.value().GetDouble("idle-timeout", 0.0);
  CPA_CHECK_GE(options.sessions.num_threads, 1u);
  CPA_CHECK_GE(options.sessions.max_sessions, 1u);

  const std::string transport = flags.value().GetString("transport", "binary");
  CPA_CHECK(transport == "binary" || transport == "json")
      << "--transport must be 'json' or 'binary', got '" << transport << "'";
  options.accept_binary = transport == "binary";

  const bool router_mode = flags.value().GetBool("router", false);
  const std::string unix_path = flags.value().GetString("unix", "");
  const bool socket_mode =
      flags.value().GetBool("tcp", false) || router_mode || !unix_path.empty();

  if (!socket_mode) {
    cpa::ConsensusServer server(options);
    std::fprintf(stderr,
                 "cpa_server: serving on stdin/stdout (num_threads=%zu, "
                 "max_sessions=%zu, idle_timeout=%.1fs, %s)\n",
                 options.sessions.num_threads, options.sessions.max_sessions,
                 options.idle_timeout_seconds,
                 cpa::simd::SimdReportLine().c_str());
    server.Serve(std::cin, std::cout);
    return 0;
  }

  cpa::TcpTransportOptions tcp_options;
  tcp_options.bind_address = flags.value().GetString("bind", "127.0.0.1");
  tcp_options.port =
      static_cast<std::uint16_t>(flags.value().GetInt("port", 0));
  tcp_options.unix_path = unix_path;
  tcp_options.max_connections =
      static_cast<std::size_t>(flags.value().GetInt("max-connections", 1024));
  tcp_options.max_frame_bytes = static_cast<std::size_t>(flags.value().GetInt(
      "max-frame-bytes",
      static_cast<long long>(cpa::server::kDefaultMaxFrameBytes)));
  const bool event_loop = flags.value().GetBool("event-loop", false);
  tcp_options.io_threads =
      static_cast<std::size_t>(flags.value().GetInt("io-threads", 2));
  tcp_options.dispatch_threads =
      static_cast<std::size_t>(flags.value().GetInt("dispatch-threads", 0));
  CPA_CHECK_GE(tcp_options.io_threads, 1u);

  // Mask the shutdown signals before any thread exists so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  CPA_CHECK_EQ(pthread_sigmask(SIG_BLOCK, &signals, nullptr), 0);

  // The frame handler behind the listener: a session-owning server, or a
  // router forwarding to the worker fleet.
  std::unique_ptr<cpa::ConsensusServer> server;
  std::unique_ptr<cpa::Router> router;
  std::unique_ptr<cpa::IdleSweeper> sweeper;
  cpa::FrameHandler* handler = nullptr;
  if (router_mode) {
    cpa::RouterOptions router_options;
    const std::string workers = flags.value().GetString("workers", "");
    for (const std::string& address : cpa::Split(workers, ',')) {
      if (!address.empty()) router_options.workers.push_back(address);
    }
    CPA_CHECK(!router_options.workers.empty())
        << "--router requires --workers host:port[,host:port...]";
    router_options.max_frame_bytes = tcp_options.max_frame_bytes;
    router = std::make_unique<cpa::Router>(router_options);
    const cpa::Status started = router->Start();
    CPA_CHECK(started.ok()) << started.ToString();
    handler = router.get();
  } else {
    server = std::make_unique<cpa::ConsensusServer>(options);
    handler = server.get();
    if (options.idle_timeout_seconds > 0.0) {
      sweeper = std::make_unique<cpa::IdleSweeper>(
          server->sessions(), options.idle_timeout_seconds);
      sweeper->Start();
    }
  }

  std::unique_ptr<cpa::Transport> listener;
  if (event_loop) {
    listener =
        std::make_unique<cpa::EventLoopTransport>(*handler, tcp_options);
  } else {
    listener = std::make_unique<cpa::TcpTransport>(*handler, tcp_options);
  }
  const cpa::Status started = listener->Start();
  CPA_CHECK(started.ok()) << started.ToString();
  const std::string endpoint =
      unix_path.empty()
          ? cpa::StrFormat("%s:%u", tcp_options.bind_address.c_str(),
                           static_cast<unsigned>(listener->port()))
          : unix_path;
  std::string loop_banner = "loop=thread-per-conn";
  if (event_loop) {
    const auto& reactor =
        static_cast<const cpa::EventLoopTransport&>(*listener);
    loop_banner = cpa::StrFormat(
        "loop=epoll, io_threads=%zu, dispatch_threads=%zu",
        tcp_options.io_threads, reactor.dispatch_threads());
  }
  if (router_mode) {
    std::fprintf(stderr,
                 "cpa_server: routing on %s (transport=%s, %s, workers=%zu, "
                 "max_connections=%zu, %s)\n",
                 endpoint.c_str(), transport.c_str(), loop_banner.c_str(),
                 router->num_workers(), tcp_options.max_connections,
                 cpa::simd::SimdReportLine().c_str());
  } else {
    std::fprintf(stderr,
                 "cpa_server: listening on %s (transport=%s, %s, "
                 "num_threads=%zu, max_sessions=%zu, max_connections=%zu, "
                 "idle_timeout=%.1fs, %s)\n",
                 endpoint.c_str(), transport.c_str(), loop_banner.c_str(),
                 options.sessions.num_threads, options.sessions.max_sessions,
                 tcp_options.max_connections, options.idle_timeout_seconds,
                 cpa::simd::SimdReportLine().c_str());
  }

  WaitForShutdownSignal();
  listener->Shutdown();
  if (sweeper != nullptr) sweeper->Stop();
  cpa::TransportStats stats = listener->stats();
  if (router != nullptr) {
    stats.frames_forwarded = router->frames_forwarded();
    stats.backend_reconnects = router->backend_reconnects();
    router->Shutdown();
  }
  std::fprintf(stderr,
               "cpa_server: served %llu frames in / %llu out over %llu "
               "connections (%llu framing errors, %llu forwarded, "
               "%llu backend reconnects, %llu sessions expired)\n",
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.frames_out),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.framing_errors),
               static_cast<unsigned long long>(stats.frames_forwarded),
               static_cast<unsigned long long>(stats.backend_reconnects),
               static_cast<unsigned long long>(
                   sweeper != nullptr ? sweeper->expired() : 0));
  std::fprintf(stderr,
               "cpa_server: syscalls: %llu recvs (%.1f frames/recv), "
               "%llu sends, %llu partial writes, %llu wouldblock\n",
               static_cast<unsigned long long>(stats.recv_calls),
               stats.recv_calls > 0 ? static_cast<double>(stats.frames_in) /
                                          static_cast<double>(stats.recv_calls)
                                    : 0.0,
               static_cast<unsigned long long>(stats.send_calls),
               static_cast<unsigned long long>(stats.partial_writes),
               static_cast<unsigned long long>(stats.wouldblock_events));
  if (router != nullptr) {
    for (const cpa::RouterWorkerStats& row : router->worker_stats()) {
      std::fprintf(stderr,
                   "cpa_server: worker %s: %llu forwarded, %llu reconnects, "
                   "%llu errors\n",
                   row.address.c_str(),
                   static_cast<unsigned long long>(row.frames_forwarded),
                   static_cast<unsigned long long>(row.reconnects),
                   static_cast<unsigned long long>(row.errors));
    }
  }
  return 0;
}
