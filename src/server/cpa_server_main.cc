/// \file cpa_server_main.cc
/// \brief The `cpa_server` binary: the multi-session consensus server.
///
///   $ cpa_server [--num-threads N] [--max-sessions S] [--idle-timeout SEC]
///                [--tcp] [--port N] [--bind ADDR] [--transport json|binary]
///                [--max-connections C] [--max-frame-bytes B]
///
/// Without `--tcp` the server speaks line-delimited JSON over
/// stdin/stdout — one JSON request per input line, one JSON response per
/// output line (src/server/protocol.h; full format with transcripts in
/// docs/API.md). Example exchange:
///
///   > {"op":"open","config":{"method":"MV","num_items":2,"num_workers":2,
///      "num_labels":3}}
///   < {"method":"MV","ok":true,"op":"open","session":"s1"}
///   > {"op":"observe","session":"s1","answers":[
///      {"item":0,"worker":0,"labels":[1]}]}
///   < {"answers_seen":1,"batches_seen":1,"ok":true,"op":"observe",...}
///
/// With `--tcp` it binds `--bind`:`--port` (default 127.0.0.1, ephemeral)
/// and serves the same protocol in length-prefixed frames
/// (src/server/framing.h): JSON frames for everything, binary frames
/// (src/server/binary_codec.h) for the hot observe/snapshot/finalize path
/// unless `--transport json` disables them. The bound port is announced
/// on stderr as `cpa_server: listening on <addr>:<port>`; the process
/// serves until SIGINT/SIGTERM, then drains connections and exits 0.
///
/// Diagnostics go to stderr; stdout carries only stdio-mode responses.

#include <csignal>
#include <cstdio>
#include <iostream>
#include <string>

#include "server/consensus_server.h"
#include "server/tcp_transport.h"
#include "util/flags.h"
#include "util/logging.h"

namespace {

/// Blocks until SIGINT or SIGTERM arrives. The signals are masked before
/// the transport spawns its threads, so delivery is funneled to this
/// sigwait and never interrupts a handler mid-request.
void WaitForShutdownSignal() {
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  int received = 0;
  sigwait(&signals, &received);
  std::fprintf(stderr, "cpa_server: caught signal %d, draining\n", received);
}

}  // namespace

int main(int argc, char** argv) {
  const auto flags = cpa::Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();

  cpa::ConsensusServerOptions options;
  options.sessions.num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 1));
  options.sessions.max_sessions =
      static_cast<std::size_t>(flags.value().GetInt("max-sessions", 64));
  options.idle_timeout_seconds = flags.value().GetDouble("idle-timeout", 0.0);
  CPA_CHECK_GE(options.sessions.num_threads, 1u);
  CPA_CHECK_GE(options.sessions.max_sessions, 1u);

  const std::string transport = flags.value().GetString("transport", "binary");
  CPA_CHECK(transport == "binary" || transport == "json")
      << "--transport must be 'json' or 'binary', got '" << transport << "'";
  options.accept_binary = transport == "binary";

  const bool tcp = flags.value().GetBool("tcp", false);
  cpa::ConsensusServer server(options);

  if (!tcp) {
    std::fprintf(stderr,
                 "cpa_server: serving on stdin/stdout (num_threads=%zu, "
                 "max_sessions=%zu, idle_timeout=%.1fs)\n",
                 options.sessions.num_threads, options.sessions.max_sessions,
                 options.idle_timeout_seconds);
    server.Serve(std::cin, std::cout);
    return 0;
  }

  cpa::TcpTransportOptions tcp_options;
  tcp_options.bind_address = flags.value().GetString("bind", "127.0.0.1");
  tcp_options.port =
      static_cast<std::uint16_t>(flags.value().GetInt("port", 0));
  tcp_options.max_connections =
      static_cast<std::size_t>(flags.value().GetInt("max-connections", 1024));
  tcp_options.max_frame_bytes = static_cast<std::size_t>(flags.value().GetInt(
      "max-frame-bytes",
      static_cast<long long>(cpa::server::kDefaultMaxFrameBytes)));

  // Mask the shutdown signals before any thread exists so every thread
  // inherits the mask and sigwait below is the only consumer.
  sigset_t signals;
  sigemptyset(&signals);
  sigaddset(&signals, SIGINT);
  sigaddset(&signals, SIGTERM);
  CPA_CHECK_EQ(pthread_sigmask(SIG_BLOCK, &signals, nullptr), 0);

  cpa::TcpTransport tcp_transport(server, tcp_options);
  const cpa::Status started = tcp_transport.Start();
  CPA_CHECK(started.ok()) << started.ToString();
  std::fprintf(stderr,
               "cpa_server: listening on %s:%u (transport=%s, "
               "num_threads=%zu, max_sessions=%zu, max_connections=%zu, "
               "idle_timeout=%.1fs)\n",
               tcp_options.bind_address.c_str(),
               static_cast<unsigned>(tcp_transport.port()), transport.c_str(),
               options.sessions.num_threads, options.sessions.max_sessions,
               tcp_options.max_connections, options.idle_timeout_seconds);

  WaitForShutdownSignal();
  tcp_transport.Shutdown();
  const cpa::TcpTransportStats stats = tcp_transport.stats();
  std::fprintf(stderr,
               "cpa_server: served %llu frames in / %llu out over %llu "
               "connections (%llu framing errors)\n",
               static_cast<unsigned long long>(stats.frames_in),
               static_cast<unsigned long long>(stats.frames_out),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.framing_errors));
  return 0;
}
