/// \file cpa_server_main.cc
/// \brief The `cpa_server` binary: the multi-session consensus server over
/// stdin/stdout.
///
///   $ cpa_server [--num-threads N] [--max-sessions S] [--idle-timeout SEC]
///
/// One JSON request per input line, one JSON response per output line
/// (src/server/protocol.h; full format with transcripts in docs/API.md).
/// Example exchange:
///
///   > {"op":"open","config":{"method":"MV","num_items":2,"num_workers":2,
///      "num_labels":3}}
///   < {"method":"MV","ok":true,"op":"open","session":"s1"}
///   > {"op":"observe","session":"s1","answers":[
///      {"item":0,"worker":0,"labels":[1]}]}
///   < {"answers_seen":1,"batches_seen":1,"ok":true,"op":"observe",...}
///
/// The process exits 0 at EOF. Diagnostics go to stderr; stdout carries
/// only response lines.

#include <cstdio>
#include <iostream>

#include "server/consensus_server.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  const auto flags = cpa::Flags::Parse(argc, argv);
  CPA_CHECK(flags.ok()) << flags.status().ToString();

  cpa::ConsensusServerOptions options;
  options.sessions.num_threads =
      static_cast<std::size_t>(flags.value().GetInt("num-threads", 1));
  options.sessions.max_sessions =
      static_cast<std::size_t>(flags.value().GetInt("max-sessions", 64));
  options.idle_timeout_seconds = flags.value().GetDouble("idle-timeout", 0.0);
  CPA_CHECK_GE(options.sessions.num_threads, 1u);
  CPA_CHECK_GE(options.sessions.max_sessions, 1u);

  cpa::ConsensusServer server(options);
  std::fprintf(stderr,
               "cpa_server: serving on stdin/stdout (num_threads=%zu, "
               "max_sessions=%zu, idle_timeout=%.1fs)\n",
               options.sessions.num_threads, options.sessions.max_sessions,
               options.idle_timeout_seconds);
  server.Serve(std::cin, std::cout);
  return 0;
}
