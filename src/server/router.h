#ifndef CPA_SERVER_ROUTER_H_
#define CPA_SERVER_ROUTER_H_

/// \file router.h
/// \brief The scale-out front-end: session-affine frame forwarding.
///
/// `cpa_server --router` turns one process into a thin front door for a
/// fleet of ordinary workers (`cpa_server --tcp` processes). The router
/// speaks the same framed wire protocol as a worker — clients cannot tell
/// the difference — but instead of dispatching a frame it:
///
///   1. peeks just far enough into the frame to learn the op and the
///      session id (a shallow JSON field read or a fixed-offset binary
///      read — the body is never re-encoded),
///   2. picks a worker by consistent-hashing the session id onto a ring
///      of virtual nodes (FNV-1a 64 + avalanche finalizer;
///      `virtual_nodes` points per worker, so adding a worker remaps
///      ~1/N of sessions, not all of them),
///   3. forwards the original frame bytes over a pooled connection and
///      relays the worker's reply verbatim.
///
/// Session affinity is the whole trick: every op that names session `s`
/// hashes to the same worker, so the worker's in-memory engine state *is*
/// the shard. `open`/`restore` requests without an explicit session id
/// get a router-generated id (`r<n>`) injected — the only case where a
/// frame is rewritten — because a worker-generated id would not route
/// back to the worker that owns it. `list` fans out to every worker and
/// merges; `methods` goes to worker 0 (registries are identical).
///
/// Worker death: a forward that fails mid-conversation redials once
/// (counted in `backend_reconnects`) and retries; if the worker is truly
/// gone the client gets a clean per-request IOError reply in its own
/// encoding — never a hung connection. Sessions on a dead worker are
/// lost unless checkpointed (docs/ARCHITECTURE.md, "Scale-out").
///
/// Thread-safety: `HandleFrame` is called concurrently by the transport's
/// connection threads; each worker keeps a mutex-guarded pool of idle
/// connections (one checkout per in-flight forward, strict round-trip per
/// checkout, so pooled connections never carry interleaved replies).

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "server/frame_handler.h"
#include "server/framing.h"
#include "server/tcp_client.h"
#include "util/status.h"

namespace cpa {

/// \brief Router configuration.
struct RouterOptions {
  /// Backend worker addresses: `host:port` (dotted quad) or `unix:PATH`.
  std::vector<std::string> workers;

  /// Ring points per worker. More points smooth the session distribution;
  /// 64 keeps the imbalance under a few percent for small fleets.
  std::size_t virtual_nodes = 64;

  /// Frame size cap for backend connections (must be at least the front
  /// transport's cap or large replies die on the return path).
  std::size_t max_frame_bytes = server::kDefaultMaxFrameBytes;
};

/// \brief Per-worker forwarding counters (`cpa_server --router` prints
/// one line per worker at shutdown).
struct RouterWorkerStats {
  std::string address;
  std::uint64_t frames_forwarded = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t errors = 0;  ///< forwards answered by a router error reply
};

/// \brief Consistent-hashing frame forwarder over a worker fleet.
class Router : public FrameHandler {
 public:
  explicit Router(const RouterOptions& options);

  /// Closes every pooled backend connection (Shutdown).
  ~Router() override;

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Validates the worker list and builds the hash ring. Connections are
  /// dialed lazily on first forward, so workers may come up after the
  /// router. Call once before serving.
  Status Start();

  /// Routes one frame to its worker and returns the worker's reply (or a
  /// router-generated error reply in the frame's encoding). Thread-safe.
  server::Frame HandleFrame(const server::Frame& frame) override;

  /// Closes all pooled connections. Idempotent. In-flight forwards finish
  /// (their connections are checked out, not pooled).
  void Shutdown();

  std::size_t num_workers() const { return workers_.size(); }

  /// Which worker index the ring assigns to `session` (tests).
  std::size_t WorkerIndexFor(std::string_view session) const;

  std::vector<RouterWorkerStats> worker_stats() const;
  std::uint64_t frames_forwarded() const;
  std::uint64_t backend_reconnects() const;

 private:
  struct Worker;

  /// Dials a fresh connection to `worker`.
  Result<server::TcpFrameClient> Dial(const Worker& worker) const;

  /// Checkout → round-trip → return-to-pool, with one redial on failure.
  Result<server::Frame> Forward(Worker& worker, const server::Frame& frame);

  /// Forward plus error-to-reply conversion: always returns a frame of
  /// the request's kind.
  server::Frame ForwardOrError(Worker& worker, const server::Frame& frame,
                               std::string_view op, std::string_view session);

  server::Frame HandleJson(const server::Frame& frame);
  server::Frame HandleBinary(const server::Frame& frame);

  /// Fans `list` out to every worker and merges the session arrays.
  server::Frame HandleList(const server::Frame& frame);

  RouterOptions options_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::map<std::uint64_t, std::size_t> ring_;
  std::atomic<std::uint64_t> next_session_{0};
  std::atomic<bool> running_{false};
};

}  // namespace cpa

#endif  // CPA_SERVER_ROUTER_H_
