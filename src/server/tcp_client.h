#ifndef CPA_SERVER_TCP_CLIENT_H_
#define CPA_SERVER_TCP_CLIENT_H_

/// \file tcp_client.h
/// \brief A minimal blocking client for the framed TCP protocol.
///
/// The in-repo consumers of the socket transport — the fig11 load
/// generator, the transport tests, and `examples/tcp_client` — all speak
/// through this class. It is deliberately simple: blocking connect, an
/// explicit `Send`/`ReadFrame` split so callers can pipeline many request
/// frames before reading any response (the transport guarantees responses
/// come back in request order per connection), and a `Roundtrip` helper
/// for the one-at-a-time case. Not thread-safe; one client per thread.

#include <cstdint>
#include <string>
#include <string_view>

#include "server/framing.h"
#include "util/status.h"

namespace cpa::server {

/// \brief One TCP connection speaking length-prefixed frames.
class TcpFrameClient {
 public:
  TcpFrameClient() = default;
  ~TcpFrameClient() { Close(); }

  TcpFrameClient(TcpFrameClient&& other) noexcept;
  TcpFrameClient& operator=(TcpFrameClient&& other) noexcept;
  TcpFrameClient(const TcpFrameClient&) = delete;
  TcpFrameClient& operator=(const TcpFrameClient&) = delete;

  /// Connects to `host:port` (dotted quad).
  static Result<TcpFrameClient> Connect(
      const std::string& host, std::uint16_t port,
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Connects to a UNIX-domain socket (`cpa_server --unix PATH`). Same
  /// framed protocol, no TCP stack.
  static Result<TcpFrameClient> ConnectUnix(
      const std::string& path,
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Sends one framed request.
  Status Send(FrameKind kind, std::string_view payload);

  /// Sends raw pre-encoded bytes (tests: batched frames, broken frames).
  Status SendRaw(std::string_view bytes);

  /// Blocks until one complete response frame arrives. EOF from the
  /// server fails with IOError; a recoverable framing error on the
  /// response stream fails with that error.
  Result<Frame> ReadFrame();

  /// `Send` + `ReadFrame`.
  Result<Frame> Roundtrip(FrameKind kind, std::string_view payload);

  /// Half-closes the write side (the server sees EOF and, once its
  /// replies are flushed, closes too) without dropping unread responses.
  void FinishWrites();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace cpa::server

#endif  // CPA_SERVER_TCP_CLIENT_H_
