#ifndef CPA_SERVER_TCP_CLIENT_H_
#define CPA_SERVER_TCP_CLIENT_H_

/// \file tcp_client.h
/// \brief A minimal blocking client for the framed TCP protocol.
///
/// The in-repo consumers of the socket transport — the fig11 load
/// generator, the transport tests, and `examples/tcp_client` — all speak
/// through this class. It is deliberately simple: blocking connect, an
/// explicit `Send`/`ReadFrame` split so callers can pipeline many request
/// frames before reading any response, and a `Roundtrip` helper for the
/// one-at-a-time case. Not thread-safe; one client per thread.
///
/// Two pipelining disciplines (framing.h):
///   - *Ordered*: plain `Send`; responses come back in request order on
///     every transport.
///   - *Sequenced*: `SendSequenced` tags each request with a caller-chosen
///     sequence id; responses echo the id (`Frame::sequenced`/`sequence`
///     on `ReadFrame`) and may arrive in any order on the event-loop
///     transport — match by id, not position. Probe support first with
///     `NegotiateSequencing` (pre-sequencing servers reject tagged
///     frames; the probe downgrades gracefully).

#include <cstdint>
#include <string>
#include <string_view>

#include "server/framing.h"
#include "util/status.h"

namespace cpa::server {

/// \brief One TCP connection speaking length-prefixed frames.
class TcpFrameClient {
 public:
  TcpFrameClient() = default;
  ~TcpFrameClient() { Close(); }

  TcpFrameClient(TcpFrameClient&& other) noexcept;
  TcpFrameClient& operator=(TcpFrameClient&& other) noexcept;
  TcpFrameClient(const TcpFrameClient&) = delete;
  TcpFrameClient& operator=(const TcpFrameClient&) = delete;

  /// Connects to `host:port` (dotted quad).
  static Result<TcpFrameClient> Connect(
      const std::string& host, std::uint16_t port,
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Connects to a UNIX-domain socket (`cpa_server --unix PATH`). Same
  /// framed protocol, no TCP stack.
  static Result<TcpFrameClient> ConnectUnix(
      const std::string& path,
      std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// Sends one framed request.
  Status Send(FrameKind kind, std::string_view payload);

  /// Sends one sequenced framed request tagged `sequence`. The matching
  /// response echoes the tag; in-flight ids must be unique, and the
  /// caller owns id assignment/reuse (u16 — wrap when you like, just not
  /// while the previous use is still in flight).
  Status SendSequenced(FrameKind kind, std::string_view payload,
                       std::uint16_t sequence);

  /// Probes whether the server echoes sequence tags: one sequenced
  /// `{"op":"methods"}` roundtrip. True when the reply carries the tag
  /// back; false when the server predates sequencing (it answers with an
  /// untagged error frame — the connection stays usable in ordered
  /// mode). IOError only on transport failure. Call before pipelining
  /// out of order; must not be called with responses outstanding.
  Result<bool> NegotiateSequencing();

  /// Sends raw pre-encoded bytes (tests: batched frames, broken frames).
  Status SendRaw(std::string_view bytes);

  /// Blocks until one complete response frame arrives. EOF from the
  /// server fails with IOError; a recoverable framing error on the
  /// response stream fails with that error.
  Result<Frame> ReadFrame();

  /// `Send` + `ReadFrame`.
  Result<Frame> Roundtrip(FrameKind kind, std::string_view payload);

  /// Half-closes the write side (the server sees EOF and, once its
  /// replies are flushed, closes too) without dropping unread responses.
  void FinishWrites();

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  FrameDecoder decoder_{kDefaultMaxFrameBytes};
};

}  // namespace cpa::server

#endif  // CPA_SERVER_TCP_CLIENT_H_
