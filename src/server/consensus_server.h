#ifndef CPA_SERVER_CONSENSUS_SERVER_H_
#define CPA_SERVER_CONSENSUS_SERVER_H_

/// \file consensus_server.h
/// \brief The multi-session front-end: wire protocol ↔ `SessionManager`.
///
/// One dispatch core, three transports. `Handle` turns a parsed
/// `server::Request` into a structured `server::Response`; everything else
/// is encoding:
///
/// - `HandleLine` — line-JSON in, line-JSON out. The stdio transport
///   (`cpa_server` without `--tcp`) and the in-process tests use it.
/// - `HandleFrame` — one framed request in, one framed response out
///   (framing.h). JSON frames go through the line path; binary frames
///   through binary_codec.h. The TCP transport (tcp_transport.h) drains
///   frames off sockets and calls this per frame. Replies always match
///   the request frame's encoding, so JSON and binary clients can share
///   one connection, one session, one server.
///
/// `HandleLine`/`HandleFrame` are safe to call from any number of threads
/// concurrently — the TCP transport runs one thread per connection against
/// a single server instance — and `Serve` wraps the line path in a
/// blocking read/write loop over line-delimited streams.
///
/// Idle-session expiry: when `idle_timeout_seconds > 0`, every handled
/// request also sweeps sessions idle longer than the timeout, so an
/// abandoned stream (or dropped connection) cannot pin its engine state
/// forever.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "server/frame_handler.h"
#include "server/framing.h"
#include "server/protocol.h"
#include "server/session_manager.h"

namespace cpa {

/// \brief Server configuration.
struct ConsensusServerOptions {
  /// Shared-pool size and session cap (session_manager.h).
  SessionManagerOptions sessions;

  /// Expire sessions idle longer than this many seconds (0 = never).
  double idle_timeout_seconds = 0.0;

  /// Accept binary frames (`--transport binary`, the default). When
  /// false the server is a JSON-only debugging endpoint: binary frames
  /// get a FailedPrecondition error reply (in a binary frame, so the
  /// client can still parse it) and no dispatch happens.
  bool accept_binary = true;
};

/// \brief Serves many concurrent consensus sessions over the wire protocol.
class ConsensusServer : public FrameHandler {
 public:
  explicit ConsensusServer(const ConsensusServerOptions& options = {});

  ConsensusServer(const ConsensusServer&) = delete;
  ConsensusServer& operator=(const ConsensusServer&) = delete;

  /// Dispatches one parsed request — the transport-independent core.
  /// Never fails: engine and session errors come back in
  /// `Response::status`. Thread-safe.
  server::Response Handle(const server::Request& request);

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never fails: protocol and engine errors come back as
  /// `{"ok":false,...}` responses. Thread-safe.
  std::string HandleLine(std::string_view line);

  /// Handles one framed request and returns the framed response payload
  /// (the caller owns frame I/O). The reply's kind always equals the
  /// request's kind. Thread-safe.
  server::Frame HandleFrame(const server::Frame& frame) override;

  /// Reads request lines from `in` until EOF, writing one response line
  /// each to `out` (flushed per line — clients may pipeline). Blank lines
  /// are ignored.
  void Serve(std::istream& in, std::ostream& out);

  /// The session layer (tests and in-process clients drive it directly).
  SessionManager& sessions() { return sessions_; }
  const ConsensusServerOptions& options() const { return options_; }

 private:
  ConsensusServerOptions options_;
  SessionManager sessions_;
};

}  // namespace cpa

#endif  // CPA_SERVER_CONSENSUS_SERVER_H_
