#ifndef CPA_SERVER_CONSENSUS_SERVER_H_
#define CPA_SERVER_CONSENSUS_SERVER_H_

/// \file consensus_server.h
/// \brief The multi-session front-end: wire protocol ↔ `SessionManager`.
///
/// A `ConsensusServer` turns one request line (protocol.h) into one
/// response line. `HandleLine` is safe to call from any number of threads
/// concurrently — the load generator drives one client thread per stream
/// against a single server instance — and `Serve` wraps it in a blocking
/// read-request/write-response loop over line-delimited streams (the
/// `cpa_server` binary runs it over stdin/stdout).
///
/// Idle-session expiry: when `idle_timeout_seconds > 0`, every handled
/// request also sweeps sessions idle longer than the timeout, so an
/// abandoned stream cannot pin its engine state forever.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "server/protocol.h"
#include "server/session_manager.h"

namespace cpa {

/// \brief Server configuration.
struct ConsensusServerOptions {
  /// Shared-pool size and session cap (session_manager.h).
  SessionManagerOptions sessions;

  /// Expire sessions idle longer than this many seconds (0 = never).
  double idle_timeout_seconds = 0.0;
};

/// \brief Serves many concurrent consensus sessions over the JSON protocol.
class ConsensusServer {
 public:
  explicit ConsensusServer(const ConsensusServerOptions& options = {});

  ConsensusServer(const ConsensusServer&) = delete;
  ConsensusServer& operator=(const ConsensusServer&) = delete;

  /// Handles one request line and returns the response line (no trailing
  /// newline). Never fails: protocol and engine errors come back as
  /// `{"ok":false,...}` responses. Thread-safe.
  std::string HandleLine(std::string_view line);

  /// Reads request lines from `in` until EOF, writing one response line
  /// each to `out` (flushed per line — clients may pipeline). Blank lines
  /// are ignored.
  void Serve(std::istream& in, std::ostream& out);

  /// The session layer (tests and in-process clients drive it directly).
  SessionManager& sessions() { return sessions_; }
  const ConsensusServerOptions& options() const { return options_; }

 private:
  std::string Dispatch(const server::Request& request);

  ConsensusServerOptions options_;
  SessionManager sessions_;
};

}  // namespace cpa

#endif  // CPA_SERVER_CONSENSUS_SERVER_H_
