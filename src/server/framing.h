#ifndef CPA_SERVER_FRAMING_H_
#define CPA_SERVER_FRAMING_H_

/// \file framing.h
/// \brief The length-prefixed frame layer of the socket transport.
///
/// A TCP stream carries frames back to back; each frame is one request or
/// one response in either encoding:
///
///   offset 0  u32 (LE)  body length in bytes (header excluded)
///   offset 4  u8        kind: 1 = JSON text, 2 = binary (binary_codec.h)
///   offset 5  u8        flags: 0 = legacy ordered frame,
///                       bit 0 = frame carries a sequence id
///   offset 6  u16 (LE)  sequence id (must be 0 when flags == 0)
///   offset 8  body
///
/// Length-prefixed framing is what makes batching cheap: a client writes
/// any number of frames in one send, the server drains every complete
/// frame out of one recv — no newline scanning, no per-request syscall.
///
/// **Sequence ids** (flags bit 0) are the pipelining contract: a response
/// frame always echoes the request frame's flags and sequence id, so a
/// client that tags its requests can match responses by id instead of by
/// arrival order — and a transport that completes requests out of order
/// (event_loop_transport.h) may then interleave responses freely. A frame
/// with flags == 0 is a *legacy ordered* frame: its response also carries
/// zeros, and ordered transports (and the ordered lane of the event loop)
/// reply to legacy frames strictly in request order, so pre-sequencing
/// clients interoperate byte-identically. Old servers reject a sequenced
/// frame with a recoverable error reply (nonzero "reserved" bytes), which
/// is exactly the probe `TcpFrameClient::NegotiateSequencing` uses to
/// version-negotiate the feature; see docs/API.md.
///
/// `FrameDecoder` is the incremental reader both ends use: feed it raw
/// bytes as they arrive, pull complete frames out. Oversized,
/// unknown-kind and unknown-flag frames are *recoverable*: the decoder
/// reports the error, skips exactly that frame's declared body, and keeps
/// the connection parseable — a misbehaving request costs one error
/// reply, not the connection (tested in tests/server/framing_test.cc).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cpa::server {

/// \brief Encoding of one frame's body.
enum class FrameKind : std::uint8_t {
  kJson = 1,    ///< UTF-8 JSON text (protocol.h — same grammar as stdio)
  kBinary = 2,  ///< compact binary message (binary_codec.h)
};

/// Flags-byte bit: the u16 at offset 6 is a sequence id to echo.
inline constexpr std::uint8_t kFrameFlagSequenced = 0x01;

/// \brief One decoded (or to-be-encoded) frame.
struct Frame {
  FrameKind kind = FrameKind::kJson;
  std::string payload;

  /// Sequence tag (flags bit 0). Responses echo the request's tag
  /// verbatim; `sequence` is meaningful only when `sequenced` is true.
  bool sequenced = false;
  std::uint16_t sequence = 0;
};

/// Frames larger than this are rejected by default (the decoder skips the
/// body and reports an error instead of buffering it).
inline constexpr std::size_t kDefaultMaxFrameBytes = 16u << 20;  // 16 MiB

/// Size of the fixed frame header.
inline constexpr std::size_t kFrameHeaderBytes = 8;

/// Appends an encoded legacy (unsequenced) frame to `out`.
void AppendFrame(std::string& out, FrameKind kind, std::string_view payload);

/// Appends an encoded frame honoring the frame's sequence tag.
void AppendFrame(std::string& out, const Frame& frame);

/// Appends an encoded sequenced frame (flags bit 0 set) to `out`.
void AppendSequencedFrame(std::string& out, FrameKind kind,
                          std::string_view payload, std::uint16_t sequence);

/// Encodes one frame as header + body (sequence tag included).
std::string EncodeFrame(const Frame& frame);

/// \brief Incremental frame reader over an arbitrary byte stream.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::size_t max_frame_bytes = kDefaultMaxFrameBytes);

  /// One drained frame — either a complete payload or a recoverable
  /// framing error (oversized / unknown kind / unknown flags) whose body
  /// the decoder skipped.
  struct Item {
    Frame frame;     ///< valid iff `error.ok()`
    Status error;    ///< why the frame was dropped otherwise
    FrameKind kind;  ///< declared kind (best effort — error replies match it)

    /// Declared sequence tag (best effort — error replies echo it so a
    /// pipelining client can match the failure to its request).
    bool sequenced = false;
    std::uint16_t sequence = 0;
  };

  /// Feeds raw bytes from the stream.
  void Append(std::string_view bytes);

  /// Returns the next complete frame (or framing error), or nullopt when
  /// more bytes are needed. Call in a loop after every `Append`.
  std::optional<Item> Next();

  /// Bytes buffered but not yet consumed by `Next`.
  std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  std::size_t max_frame_bytes() const { return max_frame_bytes_; }

 private:
  std::size_t max_frame_bytes_;
  std::string buffer_;
  std::size_t consumed_ = 0;  ///< prefix of `buffer_` already drained
  std::size_t skip_remaining_ = 0;  ///< body bytes of a rejected frame
};

}  // namespace cpa::server

#endif  // CPA_SERVER_FRAMING_H_
