#ifndef CPA_SERVER_PROTOCOL_H_
#define CPA_SERVER_PROTOCOL_H_

/// \file protocol.h
/// \brief The server's line-delimited JSON wire format.
///
/// One request per line, one response line per request. Every request is a
/// JSON object with an `"op"` key; every response is a JSON object with an
/// `"ok"` key (`true` plus op-specific fields, or `false` plus `"code"` /
/// `"error"`). The JSON dialect is `util/json.h` — the same document the
/// `BENCH_*.json` reports and `EngineConfig` serialization use — emitted
/// compactly (`DumpCompact`) so a response is always exactly one line.
///
/// Ops:
/// - `open`      {"op","config"{EngineConfig},"session"?}      → session id
/// - `observe`   {"op","session","answers":[{item,worker,labels}...]}
/// - `snapshot`  {"op","session","refresh"?,"predictions"?}    → consensus
/// - `finalize`  {"op","session","predictions"?}               → final
/// - `close`      {"op","session"}
/// - `list`       {"op"}                                       → sessions
/// - `methods`    {"op"}                                       → registry
/// - `checkpoint` {"op","session"}                             → state blob
/// - `restore`    {"op","state","session"?}                    → session id
///
/// Checkpoint blobs are opaque binary (engine/checkpoint.h); the JSON
/// encoding carries them base64'd in `"state"`, the binary encoding raw.
///
/// docs/API.md documents the full format with example transcripts.

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/answer_matrix.h"
#include "engine/consensus_engine.h"
#include "engine/engine_config.h"
#include "server/session_manager.h"
#include "util/json.h"
#include "util/status.h"

namespace cpa::server {

/// \brief A parsed request line.
struct Request {
  enum class Op {
    kOpen,
    kObserve,
    kSnapshot,
    kFinalize,
    kClose,
    kList,
    kMethods,
    kCheckpoint,
    kRestore,
  };

  Op op = Op::kList;
  std::string session;  ///< "" when absent (required by most ops)

  /// `open` only: the engine configuration (method, dimensions, options).
  EngineConfig config;

  /// `observe` only: the answers to append to the stream.
  std::vector<Answer> answers;

  /// `snapshot` only: false polls the cached snapshot without refitting.
  bool refresh = true;

  /// `snapshot` / `finalize`: include the predictions array (default) or
  /// just counters (cheap polls over large item universes).
  bool include_predictions = true;

  /// `restore` only: the opaque checkpoint blob (raw bytes; base64 on the
  /// JSON wire, raw in binary frames).
  std::string state;
};

/// \brief The structured outcome of dispatching one request — the shared
/// core every transport encodes from. `ConsensusServer::Handle` produces
/// one `Response` per `Request`; `EncodeJsonResponse` (here) and
/// `EncodeBinaryResponse` (binary_codec.h) turn it into wire bytes, so
/// the stdio path, the tests, and the TCP transport all dispatch through
/// one code path and only differ in encoding.
struct Response {
  Request::Op op = Request::Op::kList;
  std::string session;  ///< echoed when known ("" otherwise)

  /// Non-OK turns the response into an error reply in any encoding.
  Status status;

  /// `open`: the method actually opened.
  std::string method;

  /// `observe`: counters + consensus delta after the accepted batch.
  ObserveAck ack;

  /// `snapshot` / `finalize`: the published snapshot (nullptr otherwise)
  /// and whether the encoder should ship the predictions array.
  SharedSnapshot snapshot;
  bool include_predictions = true;

  /// `list` / `methods`.
  std::vector<SessionInfo> sessions;
  std::vector<std::string> methods;

  /// `checkpoint`: the session's opaque state blob (raw bytes). `restore`
  /// replies reuse `ack` for the restored counters.
  std::string state;
};

/// Stable wire name of an op ("open", "observe", ...).
std::string_view OpName(Request::Op op);

/// Parses one request line. Unknown ops, missing required fields, and
/// malformed JSON all fail with InvalidArgument.
Result<Request> ParseRequest(std::string_view line);

/// Serializes a `Response` as one compact JSON line (the stdio wire
/// format and the JSON frame encoding of the TCP transport).
std::string EncodeJsonResponse(const Response& response);

/// \name Response builders (each returns one line, no trailing newline).
/// @{

/// `{"ok":false,"op":...,"session":...,"code":...,"error":...}`.
std::string ErrorResponse(std::string_view op, std::string_view session,
                          const Status& status);

/// `{"ok":true, ...fields}` — `fields` is merged in (must not set "ok").
std::string OkResponse(std::string_view op, JsonValue::Object fields);

/// The snapshot body shared by `snapshot` and `finalize` responses:
/// method, counters, learning rate, iterations, finalized flag, and —
/// when `include_predictions` — one label array per item.
JsonValue::Object SnapshotFields(const ConsensusSnapshot& snapshot,
                                 bool include_predictions);

/// One row of a `list` response.
JsonValue SessionInfoToJson(const SessionInfo& info);

/// @}

/// \name Answer conversions (shared with the load generator).
/// @{

/// `{"item":i,"worker":u,"labels":[c,...]}`.
JsonValue AnswerToJson(const Answer& answer);

/// Serializes a whole observe request for `session`.
std::string MakeObserveRequest(std::string_view session,
                               std::span<const Answer> answers);

/// @}

}  // namespace cpa::server

#endif  // CPA_SERVER_PROTOCOL_H_
