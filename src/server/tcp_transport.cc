#include "server/tcp_transport.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "server/binary_codec.h"
#include "server/protocol.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

/// Writes all of `bytes` to `fd`, riding out EINTR and partial writes.
/// MSG_NOSIGNAL: a peer that hung up costs an EPIPE, not a SIGPIPE.
/// Counts one send_call per send(2) and one partial_write per short send.
bool SendAll(int fd, std::string_view bytes,
             std::atomic<std::uint64_t>& send_calls,
             std::atomic<std::uint64_t>& partial_writes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    send_calls.fetch_add(1, std::memory_order_relaxed);
    if (static_cast<std::size_t>(n) < bytes.size() - sent) {
      partial_writes.fetch_add(1, std::memory_order_relaxed);
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

/// One live connection: its socket plus the thread serving it.
///
/// fd lifetime: written once before the handler thread starts and closed
/// only *after* that thread is joined (by ReapFinished or Shutdown), so
/// `Shutdown` can always safely `shutdown(2)` the fd to unblock the
/// reader — the descriptor can never be recycled under it. The handler
/// itself never closes; it just sets `done`.
struct TcpTransport::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};
};

TcpTransport::TcpTransport(FrameHandler& handler,
                           const TcpTransportOptions& options)
    : handler_(handler), options_(options) {}

TcpTransport::~TcpTransport() { Shutdown(); }

Status TcpTransport::Start() {
  CPA_CHECK(listen_fd_ < 0) << "TcpTransport::Start called twice";

  server_internal::ListenSocket listener;
  const Status status = server_internal::BindAndListen(options_, &listener);
  if (!status.ok()) return status;
  listen_fd_ = listener.fd;
  port_ = listener.port;
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void TcpTransport::AcceptLoop() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener was shut down (or broke); stop accepting
    }
    ReapFinished();
    if (num_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      std::string reply;
      server::AppendFrame(
          reply, server::FrameKind::kJson,
          server::ErrorResponse(
              "", "",
              Status::FailedPrecondition(StrFormat(
                  "connection limit (%zu) reached", options_.max_connections))));
      SendAll(fd, reply, send_calls_, partial_writes_);
      ::close(fd);
      continue;
    }
    server_internal::ConfigureAcceptedSocket(fd, options_);

    auto connection = std::make_unique<Connection>();
    connection->fd = fd;
    Connection* raw = connection.get();
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      connections_.push_back(std::move(connection));
    }
    raw->thread = std::thread([this, raw] { ServeConnection(raw); });
  }
}

void TcpTransport::ServeConnection(Connection* connection) {
  server::FrameDecoder decoder(options_.max_frame_bytes);
  char buffer[64 * 1024];
  std::string replies;
  bool open = true;
  while (open) {
    const ssize_t n = ::recv(connection->fd, buffer, sizeof(buffer), 0);
    if (n == 0) break;  // client closed its end
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // reset / local shutdown
    }
    recv_calls_.fetch_add(1, std::memory_order_relaxed);
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n), std::memory_order_relaxed);
    decoder.Append(std::string_view(buffer, static_cast<std::size_t>(n)));

    // The batching core: every complete frame delivered by this read is
    // dispatched now, and all replies leave in one send.
    replies.clear();
    while (auto item = decoder.Next()) {
      server::Frame reply;
      if (item->error.ok()) {
        frames_in_.fetch_add(1, std::memory_order_relaxed);
        reply = handler_.HandleFrame(item->frame);
      } else {
        framing_errors_.fetch_add(1, std::memory_order_relaxed);
        reply.kind = item->kind;
        reply.payload =
            item->kind == server::FrameKind::kBinary
                ? server::EncodeBinaryError("", "", item->error)
                : server::ErrorResponse("", "", item->error);
      }
      // The response echoes the request's sequence tag; in-order
      // completion is one valid completion order for sequenced frames.
      reply.sequenced = item->sequenced;
      reply.sequence = item->sequence;
      frames_out_.fetch_add(1, std::memory_order_relaxed);
      server::AppendFrame(replies, reply);
    }
    if (!replies.empty()) {
      if (SendAll(connection->fd, replies, send_calls_, partial_writes_)) {
        bytes_out_.fetch_add(replies.size(), std::memory_order_relaxed);
      } else {
        open = false;
      }
    }
  }
  num_connections_.fetch_sub(1, std::memory_order_relaxed);
  connection->done.store(true, std::memory_order_release);
}

void TcpTransport::ReapFinished() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = connections_.begin(); it != connections_.end();) {
    if ((*it)->done.load(std::memory_order_acquire)) {
      (*it)->thread.join();
      ::close((*it)->fd);
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

void TcpTransport::Shutdown() {
  const bool was_running = running_.exchange(false, std::memory_order_acq_rel);
  if (was_running) {
    // shutdown(2) (not close) wakes a blocked accept(); the fd itself is
    // closed only after the loop has exited, so it cannot be recycled
    // under a late accept call.
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  }

  // Unblock every reader. Handlers finish dispatching what they already
  // read, flush their replies, and mark themselves done — a drain, not
  // an abort. fds stay open until after the join below.
  std::list<std::unique_ptr<Connection>> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& connection : connections_) {
      ::shutdown(connection->fd, SHUT_RDWR);
    }
    drained.swap(connections_);
  }
  for (const auto& connection : drained) {
    if (connection->thread.joinable()) connection->thread.join();
    ::close(connection->fd);
  }
}

TcpTransportStats TcpTransport::stats() const {
  TcpTransportStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.recv_calls = recv_calls_.load(std::memory_order_relaxed);
  stats.send_calls = send_calls_.load(std::memory_order_relaxed);
  stats.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  // A blocking send never sees EAGAIN; wouldblock_events stays 0 here.
  return stats;
}

}  // namespace cpa
