#include "server/event_loop_transport.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <iterator>
#include <optional>
#include <utility>

#include "server/binary_codec.h"
#include "server/protocol.h"
#include "util/endian.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

/// Which lane a decoded request belongs to (header comment in
/// event_loop_transport.h). Classification must be cheap — it runs on a
/// reactor thread — and only ever errs toward *stricter* serialization:
/// a frame we cannot confidently classify goes to the connection's
/// legacy FIFO lane, which is always correct, only slower.
struct LaneClass {
  bool read_only = false;  ///< provably cannot mutate any state
  std::string session;     ///< peeked session id ("" = unknown)
};

/// Best-effort scan for a top-level `"key":"value"` string in a compact
/// or whitespace-padded JSON object. Returns nullopt on anything
/// surprising (escapes, non-string value, absent key). Valid JSON cannot
/// smuggle an unescaped `"key"` inside a string value, so the first
/// match with a following colon is the real one for well-formed input;
/// malformed input fails the full parse at dispatch anyway.
std::optional<std::string> PeekJsonString(std::string_view payload,
                                          std::string_view key) {
  std::string needle;
  needle.reserve(key.size() + 2);
  needle.push_back('"');
  needle.append(key);
  needle.push_back('"');
  std::size_t pos = payload.find(needle);
  while (pos != std::string_view::npos) {
    std::size_t i = pos + needle.size();
    while (i < payload.size() &&
           std::isspace(static_cast<unsigned char>(payload[i]))) {
      ++i;
    }
    if (i < payload.size() && payload[i] == ':') {
      ++i;
      while (i < payload.size() &&
             std::isspace(static_cast<unsigned char>(payload[i]))) {
        ++i;
      }
      if (i >= payload.size() || payload[i] != '"') return std::nullopt;
      ++i;
      std::string value;
      while (i < payload.size()) {
        const char c = payload[i];
        if (c == '\\') return std::nullopt;  // escapes: give up, stay safe
        if (c == '"') return value;
        value.push_back(c);
        ++i;
      }
      return std::nullopt;
    }
    pos = payload.find(needle, pos + 1);
  }
  return std::nullopt;
}

/// Best-effort: true iff `"key": <literal>` appears anywhere.
bool PeekJsonLiteral(std::string_view payload, std::string_view key,
                     std::string_view literal) {
  std::string needle;
  needle.reserve(key.size() + 2);
  needle.push_back('"');
  needle.append(key);
  needle.push_back('"');
  std::size_t pos = payload.find(needle);
  while (pos != std::string_view::npos) {
    std::size_t i = pos + needle.size();
    while (i < payload.size() &&
           std::isspace(static_cast<unsigned char>(payload[i]))) {
      ++i;
    }
    if (i < payload.size() && payload[i] == ':') {
      ++i;
      while (i < payload.size() &&
             std::isspace(static_cast<unsigned char>(payload[i]))) {
        ++i;
      }
      if (payload.substr(i, literal.size()) == literal) return true;
    }
    pos = payload.find(needle, pos + 1);
  }
  return false;
}

LaneClass Classify(const server::Frame& request) {
  LaneClass out;
  if (request.kind == server::FrameKind::kBinary) {
    // Same fixed-offset peek the router uses: u8 type, u16 session
    // length, session bytes (binary_codec.h).
    const std::string_view body = request.payload;
    if (body.size() < 3) return out;
    const auto type = static_cast<std::uint8_t>(body[0]);
    const std::uint16_t len = ReadLittleEndian<std::uint16_t>(body, 1);
    if (body.size() < 3u + len) return out;
    out.session.assign(body.substr(3, len));
    if (type == server::kBinaryMsgSnapshotRequest &&
        body.size() >= 3u + len + 1u) {
      const auto flags = static_cast<std::uint8_t>(body[3 + len]);
      out.read_only = (flags & 0x01) == 0;  // bit0 = refresh
    }
    return out;
  }
  const std::optional<std::string> op = PeekJsonString(request.payload, "op");
  if (op) {
    if (*op == "snapshot") {
      // An absent "refresh" key DEFAULTS TO TRUE (protocol.cc), so the
      // fast lane requires the explicit `"refresh": false`.
      out.read_only = PeekJsonLiteral(request.payload, "refresh", "false");
    } else if (*op == "list" || *op == "methods") {
      out.read_only = true;
    }
  }
  out.session = PeekJsonString(request.payload, "session").value_or("");
  return out;
}

std::string EncodeErrorPayload(server::FrameKind kind, const Status& error) {
  return kind == server::FrameKind::kBinary
             ? server::EncodeBinaryError("", "", error)
             : server::ErrorResponse("", "", error);
}

}  // namespace

/// One live connection, shared between its owning reactor (map entry)
/// and any dispatch tasks in flight (captured shared_ptr).
///
/// fd lifetime: opened by the accept path, closed *only* by the owning
/// reactor thread (SweepClosable) or Shutdown, and only once
/// `ClosableLocked` holds — no task in flight, nothing queued — so
/// dispatch threads can always `send`/`epoll_ctl` an un-`closed` fd
/// without it being recycled under them.
struct EventLoopTransport::Conn {
  explicit Conn(std::size_t max_frame_bytes) : decoder(max_frame_bytes) {}

  int fd = -1;
  Reactor* reactor = nullptr;
  server::FrameDecoder decoder;  ///< owning reactor thread only

  std::mutex mutex;  ///< guards everything below
  std::string write_buffer;
  std::size_t write_offset = 0;  ///< flushed prefix of `write_buffer`
  std::size_t in_flight = 0;     ///< accepted requests without queued reply
  std::uint32_t armed = EPOLLIN;  ///< interest mask currently in the epoll
  bool reads_paused = false;
  bool read_eof = false;
  bool dead = false;    ///< fatal write error: discard all output
  bool closed = false;  ///< fd closed; no further syscalls on it

  /// Legacy FIFO lane: unsequenced frames (and sequenced frames whose
  /// session could not be peeked), executed and answered in order.
  std::deque<Pending> legacy;
  bool legacy_running = false;

  /// Per-session serial lanes for sequenced mutating frames. A lane
  /// exists exactly while a runner is scheduled for it.
  struct Lane {
    std::deque<Pending> queue;
  };
  std::unordered_map<std::string, Lane> lanes;

  std::size_t write_pending() const {
    return write_buffer.size() - write_offset;
  }
};

/// One epoll reactor: its own epoll instance, an eventfd for cross-thread
/// wakeups (close sweeps), and the connections it owns.
struct EventLoopTransport::Reactor {
  int epfd = -1;
  int wake_fd = -1;
  std::thread thread;
  std::mutex mutex;  ///< guards `conns` (accept path inserts cross-thread)
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
};

EventLoopTransport::EventLoopTransport(FrameHandler& handler,
                                       const TransportOptions& options)
    : handler_(handler), options_(options) {}

EventLoopTransport::~EventLoopTransport() { Shutdown(); }

Status EventLoopTransport::Start() {
  CPA_CHECK(!started_) << "EventLoopTransport::Start called twice";
  started_ = true;

  server_internal::ListenSocket listener;
  const Status status = server_internal::BindAndListen(options_, &listener);
  if (!status.ok()) return status;
  listen_fd_ = listener.fd;
  port_ = listener.port;
  // The accept loop runs until EAGAIN; the listener must not block.
  ::fcntl(listen_fd_, F_SETFL,
          ::fcntl(listen_fd_, F_GETFL, 0) | O_NONBLOCK);

  std::size_t dispatch = options_.dispatch_threads;
  if (dispatch == 0) {
    // Out-of-order completion needs slack beyond the core count: a
    // dispatch thread parked in a slow refresh must not be the only one.
    dispatch = std::max<std::size_t>(
        4, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  }
  dispatch_pool_ = std::make_unique<ThreadPool>(dispatch);

  const std::size_t io = std::max<std::size_t>(1, options_.io_threads);
  reactors_.reserve(io);
  for (std::size_t i = 0; i < io; ++i) {
    auto reactor = std::make_unique<Reactor>();
    reactor->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    reactor->wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (reactor->epfd < 0 || reactor->wake_fd < 0) {
      const Status error = Status::IOError(
          StrFormat("epoll/eventfd setup: %s", std::strerror(errno)));
      if (reactor->epfd >= 0) ::close(reactor->epfd);
      if (reactor->wake_fd >= 0) ::close(reactor->wake_fd);
      for (auto& r : reactors_) {
        ::close(r->wake_fd);
        ::close(r->epfd);
      }
      reactors_.clear();
      ::close(listen_fd_);
      listen_fd_ = -1;
      if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
      dispatch_pool_.reset();
      return error;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = reactor->wake_fd;
    ::epoll_ctl(reactor->epfd, EPOLL_CTL_ADD, reactor->wake_fd, &ev);
    reactors_.push_back(std::move(reactor));
  }
  {
    // The listener lives on reactor 0; accepted fds round-robin across
    // the pool.
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd_;
    ::epoll_ctl(reactors_[0]->epfd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }

  running_.store(true, std::memory_order_release);
  for (auto& reactor : reactors_) {
    Reactor* raw = reactor.get();
    raw->thread = std::thread([this, raw] { ReactorLoop(raw); });
  }
  return Status::OK();
}

void EventLoopTransport::ReactorLoop(Reactor* reactor) {
  epoll_event events[64];
  while (!stop_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(reactor->epfd, events,
                               static_cast<int>(std::size(events)), -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    bool sweep = false;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == reactor->wake_fd) {
        std::uint64_t token;
        while (::read(reactor->wake_fd, &token, sizeof(token)) > 0) {
        }
        sweep = true;
        continue;
      }
      if (fd == listen_fd_) {
        AcceptReady();
        continue;
      }
      std::shared_ptr<Conn> conn;
      {
        std::lock_guard<std::mutex> lock(reactor->mutex);
        const auto it = reactor->conns.find(fd);
        if (it != reactor->conns.end()) conn = it->second;
      }
      if (!conn) continue;  // closed earlier in this same event batch
      if (events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        HandleReadable(reactor, conn);
      }
      if (events[i].events & EPOLLOUT) HandleWritable(reactor, conn);
    }
    if (sweep) SweepClosable(reactor);
  }
}

void EventLoopTransport::AcceptReady() {
  while (running_.load(std::memory_order_acquire)) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN (drained) or listener shut down
    }
    if (num_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      connections_rejected_.fetch_add(1, std::memory_order_relaxed);
      std::string reply;
      server::AppendFrame(
          reply, server::FrameKind::kJson,
          server::ErrorResponse(
              "", "",
              Status::FailedPrecondition(
                  StrFormat("connection limit (%zu) reached",
                            options_.max_connections))));
      // Best effort on a non-blocking fd; a full buffer loses the
      // courtesy error, not correctness.
      ::send(fd, reply.data(), reply.size(), MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    server_internal::ConfigureAcceptedSocket(fd, options_);

    auto conn = std::make_shared<Conn>(options_.max_frame_bytes);
    conn->fd = fd;
    Reactor* target =
        reactors_[next_reactor_.fetch_add(1, std::memory_order_relaxed) %
                  reactors_.size()]
            .get();
    conn->reactor = target;
    {
      std::lock_guard<std::mutex> lock(target->mutex);
      target->conns.emplace(fd, conn);
    }
    num_connections_.fetch_add(1, std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    epoll_event ev{};
    ev.events = EPOLLIN;  // matches Conn::armed's initial value
    ev.data.fd = fd;
    if (::epoll_ctl(target->epfd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      {
        std::lock_guard<std::mutex> lock(target->mutex);
        target->conns.erase(fd);
      }
      num_connections_.fetch_sub(1, std::memory_order_relaxed);
      ::close(fd);
    }
  }
}

void EventLoopTransport::HandleReadable(Reactor* reactor,
                                        const std::shared_ptr<Conn>& conn) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed || conn->read_eof) return;
  }
  char buffer[64 * 1024];
  bool eof = false;
  while (true) {
    const ssize_t n = ::recv(conn->fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      recv_calls_.fetch_add(1, std::memory_order_relaxed);
      bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                          std::memory_order_relaxed);
      // Always drain the decoder completely: epoll re-notifies for bytes
      // in the *socket*, never for frames stranded in our buffer.
      conn->decoder.Append(
          std::string_view(buffer, static_cast<std::size_t>(n)));
      while (auto item = conn->decoder.Next()) {
        EnqueueItem(conn, std::move(*item));
      }
      bool paused;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        UpdateInterestLocked(conn.get());
        paused = conn->reads_paused;
      }
      if (paused) return;  // EPOLLIN disarmed; completions re-arm it
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    eof = true;  // reset & friends: treat as EOF, writes will flag `dead`
    break;
  }
  if (eof) {
    bool closable;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->read_eof = true;
      UpdateInterestLocked(conn.get());
      closable = ClosableLocked(*conn);
    }
    if (closable) SweepClosable(reactor);
  }
}

void EventLoopTransport::HandleWritable(Reactor* reactor,
                                        const std::shared_ptr<Conn>& conn) {
  bool closable;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->closed) return;
    FlushLocked(conn.get());
    UpdateInterestLocked(conn.get());
    closable = ClosableLocked(*conn);
  }
  if (closable) SweepClosable(reactor);
}

void EventLoopTransport::SweepClosable(Reactor* reactor) {
  std::vector<std::shared_ptr<Conn>> to_close;
  {
    std::lock_guard<std::mutex> lock(reactor->mutex);
    for (auto it = reactor->conns.begin(); it != reactor->conns.end();) {
      const std::shared_ptr<Conn>& conn = it->second;
      std::lock_guard<std::mutex> conn_lock(conn->mutex);
      if (ClosableLocked(*conn)) {
        conn->closed = true;
        to_close.push_back(conn);
        it = reactor->conns.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& conn : to_close) {
    ::close(conn->fd);  // also removes it from the epoll set
    num_connections_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void EventLoopTransport::WakeReactor(Reactor* reactor) {
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n =
      ::write(reactor->wake_fd, &one, sizeof(one));
}

bool EventLoopTransport::ClosableLocked(const Conn& conn) {
  return !conn.closed && conn.read_eof && conn.in_flight == 0 &&
         conn.legacy.empty() && conn.lanes.empty() &&
         (conn.dead || conn.write_pending() == 0);
}

void EventLoopTransport::EnqueueItem(const std::shared_ptr<Conn>& conn,
                                     server::FrameDecoder::Item item) {
  if (!item.error.ok()) {
    framing_errors_.fetch_add(1, std::memory_order_relaxed);
    Pending pending;
    pending.premade = true;
    pending.reply.kind = item.kind;
    pending.reply.sequenced = item.sequenced;
    pending.reply.sequence = item.sequence;
    pending.reply.payload = EncodeErrorPayload(item.kind, item.error);
    if (item.sequenced) {
      // Out-of-order world: answer immediately, tagged. (The caller's
      // post-batch UpdateInterestLocked arms EPOLLOUT for any leftover.)
      std::lock_guard<std::mutex> lock(conn->mutex);
      QueueReplyLocked(conn.get(), pending.reply);
      FlushLocked(conn.get());
      return;
    }
    // Legacy world: the error reply must hold its FIFO position.
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->in_flight++;
    conn->legacy.push_back(std::move(pending));
    if (!conn->legacy_running) {
      conn->legacy_running = true;
      BeginTask();
      dispatch_pool_->Submit([this, conn] { RunLegacyLane(conn); });
    }
    return;
  }

  frames_in_.fetch_add(1, std::memory_order_relaxed);
  Pending pending;
  pending.request = std::move(item.frame);
  const LaneClass lane = Classify(pending.request);

  std::lock_guard<std::mutex> lock(conn->mutex);
  conn->in_flight++;
  if (!pending.request.sequenced ||
      (!lane.read_only && lane.session.empty())) {
    conn->legacy.push_back(std::move(pending));
    if (!conn->legacy_running) {
      conn->legacy_running = true;
      BeginTask();
      dispatch_pool_->Submit([this, conn] { RunLegacyLane(conn); });
    }
  } else if (lane.read_only) {
    BeginTask();
    dispatch_pool_->Submit(
        [this, conn, moved = std::move(pending)]() mutable {
          RunDirect(conn, std::move(moved));
        });
  } else {
    const auto [it, inserted] = conn->lanes.try_emplace(lane.session);
    it->second.queue.push_back(std::move(pending));
    if (inserted) {
      BeginTask();
      dispatch_pool_->Submit([this, conn, key = lane.session] {
        RunSessionLane(conn, key);
      });
    }
  }
}

server::Frame EventLoopTransport::Execute(Pending& pending) {
  if (pending.premade) return std::move(pending.reply);
  server::Frame reply = handler_.HandleFrame(pending.request);
  reply.sequenced = pending.request.sequenced;
  reply.sequence = pending.request.sequence;
  return reply;
}

void EventLoopTransport::RunLegacyLane(const std::shared_ptr<Conn>& conn) {
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    CPA_CHECK(!conn->legacy.empty());
    pending = std::move(conn->legacy.front());
    conn->legacy.pop_front();
  }
  const server::Frame reply = Execute(pending);
  bool closable;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    QueueReplyLocked(conn.get(), reply);
    conn->in_flight--;
    if (conn->legacy.empty()) {
      conn->legacy_running = false;
    } else {
      // One request per task, then requeue: the FIFO pool round-robins
      // across every lane and connection.
      BeginTask();
      dispatch_pool_->Submit([this, conn] { RunLegacyLane(conn); });
    }
    FlushLocked(conn.get());
    UpdateInterestLocked(conn.get());
    closable = ClosableLocked(*conn);
  }
  if (closable) WakeReactor(conn->reactor);
  EndTask();
}

void EventLoopTransport::RunSessionLane(const std::shared_ptr<Conn>& conn,
                                        const std::string& key) {
  Pending pending;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    const auto it = conn->lanes.find(key);
    CPA_CHECK(it != conn->lanes.end() && !it->second.queue.empty());
    pending = std::move(it->second.queue.front());
    it->second.queue.pop_front();
  }
  const server::Frame reply = Execute(pending);
  bool closable;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    QueueReplyLocked(conn.get(), reply);
    conn->in_flight--;
    const auto it = conn->lanes.find(key);
    if (it->second.queue.empty()) {
      conn->lanes.erase(it);
    } else {
      BeginTask();
      dispatch_pool_->Submit(
          [this, conn, key] { RunSessionLane(conn, key); });
    }
    FlushLocked(conn.get());
    UpdateInterestLocked(conn.get());
    closable = ClosableLocked(*conn);
  }
  if (closable) WakeReactor(conn->reactor);
  EndTask();
}

void EventLoopTransport::RunDirect(const std::shared_ptr<Conn>& conn,
                                   Pending pending) {
  const server::Frame reply = Execute(pending);
  bool closable;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    QueueReplyLocked(conn.get(), reply);
    conn->in_flight--;
    FlushLocked(conn.get());
    UpdateInterestLocked(conn.get());
    closable = ClosableLocked(*conn);
  }
  if (closable) WakeReactor(conn->reactor);
  EndTask();
}

void EventLoopTransport::QueueReplyLocked(Conn* conn,
                                          const server::Frame& reply) {
  if (conn->dead || conn->closed) return;
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  if (conn->write_offset > 0 &&
      conn->write_offset >= conn->write_buffer.size() / 2) {
    conn->write_buffer.erase(0, conn->write_offset);
    conn->write_offset = 0;
  }
  server::AppendFrame(conn->write_buffer, reply);
}

void EventLoopTransport::FlushLocked(Conn* conn) {
  if (conn->closed || conn->dead) {
    conn->write_buffer.clear();
    conn->write_offset = 0;
    return;
  }
  while (conn->write_pending() > 0) {
    const std::size_t pending = conn->write_pending();
    const ssize_t n =
        ::send(conn->fd, conn->write_buffer.data() + conn->write_offset,
               pending, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket full: leave the rest for the reactor's EPOLLOUT.
        wouldblock_events_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      conn->dead = true;
      conn->write_buffer.clear();
      conn->write_offset = 0;
      return;
    }
    send_calls_.fetch_add(1, std::memory_order_relaxed);
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
    if (static_cast<std::size_t>(n) < pending) {
      partial_writes_.fetch_add(1, std::memory_order_relaxed);
    }
    conn->write_offset += static_cast<std::size_t>(n);
  }
  conn->write_buffer.clear();
  conn->write_offset = 0;
}

void EventLoopTransport::UpdateInterestLocked(Conn* conn) {
  conn->reads_paused =
      conn->in_flight >= options_.max_pipeline ||
      conn->write_pending() >= options_.write_high_watermark;
  std::uint32_t desired = 0;
  if (!conn->read_eof && !conn->reads_paused) desired |= EPOLLIN;
  if (!conn->dead && conn->write_pending() > 0) desired |= EPOLLOUT;
  if (conn->closed || desired == conn->armed) return;
  epoll_event ev{};
  ev.events = desired;
  ev.data.fd = conn->fd;
  // epoll_ctl is thread-safe, and the fd cannot be recycled while
  // `closed` is false (close requires ClosableLocked, which this
  // in-flight caller falsifies).
  ::epoll_ctl(conn->reactor->epfd, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed = desired;
}

void EventLoopTransport::BeginTask() {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  ++pending_tasks_;
}

void EventLoopTransport::EndTask() {
  std::lock_guard<std::mutex> lock(pending_mutex_);
  if (--pending_tasks_ == 0) pending_cv_.notify_all();
}

void EventLoopTransport::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mutex_);
  if (!started_ || shut_down_) return;
  shut_down_ = true;

  // 1. Stop accepting; half-close every connection so reactors see EOF
  //    and stop producing work.
  running_.store(false, std::memory_order_release);
  ::shutdown(listen_fd_, SHUT_RDWR);
  for (auto& reactor : reactors_) {
    std::lock_guard<std::mutex> lock(reactor->mutex);
    for (auto& [fd, conn] : reactor->conns) ::shutdown(fd, SHUT_RD);
    WakeReactor(reactor.get());
  }

  // 2. First drain pass while reactors still run, so completions get
  //    their EPOLLOUT service and most responses reach the wire.
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    pending_cv_.wait(lock, [this] { return pending_tasks_ == 0; });
  }

  // 3. Bounded wait for write buffers to empty (a client that stopped
  //    reading can hold bytes forever; don't let it hold shutdown).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (std::chrono::steady_clock::now() < deadline) {
    bool flushed = true;
    for (auto& reactor : reactors_) {
      std::lock_guard<std::mutex> lock(reactor->mutex);
      for (auto& [fd, conn] : reactor->conns) {
        std::lock_guard<std::mutex> conn_lock(conn->mutex);
        if (!conn->dead && conn->write_pending() > 0) {
          flushed = false;
          break;
        }
      }
      if (!flushed) break;
    }
    for (auto& reactor : reactors_) WakeReactor(reactor.get());
    if (flushed) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  // 4. Stop and join the reactors. After this no thread but a dispatch
  //    task can submit work.
  stop_.store(true, std::memory_order_release);
  for (auto& reactor : reactors_) WakeReactor(reactor.get());
  for (auto& reactor : reactors_) {
    if (reactor->thread.joinable()) reactor->thread.join();
  }

  // 5. Final drain: lane resubmit chains keep `pending_tasks_` nonzero
  //    until they finish, so waiting for zero here proves no task is
  //    running *or queued* — only then is destroying the pool safe
  //    (ThreadPool::Submit CHECK-fails once its destructor has begun).
  {
    std::unique_lock<std::mutex> lock(pending_mutex_);
    pending_cv_.wait(lock, [this] { return pending_tasks_ == 0; });
  }
  dispatch_pool_.reset();

  // 6. Release every descriptor.
  for (auto& reactor : reactors_) {
    for (auto& [fd, conn] : reactor->conns) {
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->closed = true;
      ::close(fd);
      num_connections_.fetch_sub(1, std::memory_order_relaxed);
    }
    reactor->conns.clear();
    ::close(reactor->wake_fd);
    ::close(reactor->epfd);
  }
  reactors_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
  }
}

TransportStats EventLoopTransport::stats() const {
  TransportStats stats;
  stats.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  stats.connections_rejected =
      connections_rejected_.load(std::memory_order_relaxed);
  stats.frames_in = frames_in_.load(std::memory_order_relaxed);
  stats.frames_out = frames_out_.load(std::memory_order_relaxed);
  stats.framing_errors = framing_errors_.load(std::memory_order_relaxed);
  stats.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  stats.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  stats.recv_calls = recv_calls_.load(std::memory_order_relaxed);
  stats.send_calls = send_calls_.load(std::memory_order_relaxed);
  stats.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  stats.wouldblock_events =
      wouldblock_events_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace cpa
