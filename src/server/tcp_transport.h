#ifndef CPA_SERVER_TCP_TRANSPORT_H_
#define CPA_SERVER_TCP_TRANSPORT_H_

/// \file tcp_transport.h
/// \brief The thread-per-connection socket transport: a TCP (or
/// UNIX-domain) listener over a `FrameHandler` — a `ConsensusServer`
/// worker or a `Router` front-end.
///
/// Thread-per-connection, deliberately (ROADMAP: "thread-per-connection
/// first, then an event loop if accept-rate demands it" — the event loop
/// is event_loop_transport.h): one accept-loop thread plus one reader
/// thread per live connection. Each reader drains every complete frame
/// out of each `recv` (framing.h — this is where request batching
/// happens), dispatches them in arrival order through
/// `ConsensusServer::HandleFrame`, and writes all the replies back in one
/// `send`. Ordering guarantee per connection: responses come back in
/// request order, so clients may pipeline arbitrarily many frames before
/// reading. Sequenced frames (framing.h flags bit 0) are accepted and
/// their sequence id echoed on the response — in-order completion is one
/// valid completion order, so a pipelining client works against this
/// transport too; it just never observes reordering here.
///
/// Graceful shutdown (`Shutdown`, also run by the destructor): stop
/// accepting, `shutdown(2)` every live socket so blocked reads return,
/// join every thread. In-flight requests finish and their responses are
/// flushed before the connection closes — a drain, not an abort.
///
/// Framing errors (oversized / unknown kind) cost one error reply and the
/// connection survives; socket errors and EOF end only that connection.
/// Sessions are independent of connections: a client may reconnect and
/// keep driving its session (pair with `idle_timeout_seconds` to reap
/// sessions whose clients never come back).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/frame_handler.h"
#include "server/framing.h"
#include "server/transport.h"
#include "util/status.h"

namespace cpa {

/// Both transports share one options/stats shape (transport.h); these
/// aliases keep the PR-6-era spellings working.
using TcpTransportOptions = TransportOptions;
using TcpTransportStats = TransportStats;

/// \brief Accepts TCP connections and speaks the framed wire protocol.
class TcpTransport : public Transport {
 public:
  /// `handler` must outlive the transport.
  TcpTransport(FrameHandler& handler, const TcpTransportOptions& options = {});

  /// Drains and joins (Shutdown).
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  Status Start() override;

  std::uint16_t port() const override { return port_; }

  void Shutdown() override;

  std::size_t num_connections() const override {
    return num_connections_.load(std::memory_order_relaxed);
  }

  TcpTransportStats stats() const override;

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* connection);

  /// Joins and erases finished connection handlers (accept-loop chore).
  void ReapFinished();

  FrameHandler& handler_;
  TcpTransportOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  mutable std::mutex mutex_;  ///< guards `connections_`
  std::list<std::unique_ptr<Connection>> connections_;
  std::atomic<std::size_t> num_connections_{0};

  /// Stats counters (relaxed increments; `stats()` snapshots them).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> recv_calls_{0};
  std::atomic<std::uint64_t> send_calls_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
};

}  // namespace cpa

#endif  // CPA_SERVER_TCP_TRANSPORT_H_
