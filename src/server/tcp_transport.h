#ifndef CPA_SERVER_TCP_TRANSPORT_H_
#define CPA_SERVER_TCP_TRANSPORT_H_

/// \file tcp_transport.h
/// \brief The socket transport: a TCP (or UNIX-domain) listener over a
/// `FrameHandler` — a `ConsensusServer` worker or a `Router` front-end.
///
/// Thread-per-connection, deliberately (ROADMAP: "thread-per-connection
/// first, then an event loop if accept-rate demands it"): one accept-loop
/// thread plus one reader thread per live connection. Each reader drains
/// every complete frame out of each `recv` (framing.h — this is where
/// request batching happens), dispatches them in arrival order through
/// `ConsensusServer::HandleFrame`, and writes all the replies back in one
/// `send`. Ordering guarantee per connection: responses come back in
/// request order, so clients may pipeline arbitrarily many frames before
/// reading.
///
/// Graceful shutdown (`Shutdown`, also run by the destructor): stop
/// accepting, `shutdown(2)` every live socket so blocked reads return,
/// join every thread. In-flight requests finish and their responses are
/// flushed before the connection closes — a drain, not an abort.
///
/// Framing errors (oversized / unknown kind) cost one error reply and the
/// connection survives; socket errors and EOF end only that connection.
/// Sessions are independent of connections: a client may reconnect and
/// keep driving its session (pair with `idle_timeout_seconds` to reap
/// sessions whose clients never come back).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "server/frame_handler.h"
#include "server/framing.h"
#include "util/status.h"

namespace cpa {

/// \brief Listener configuration.
struct TcpTransportOptions {
  /// Dotted-quad address to bind ("0.0.0.0" to serve beyond loopback).
  std::string bind_address = "127.0.0.1";

  /// Port to bind; 0 picks a free ephemeral port (read it back via
  /// `port()` — the tests and the fig11 bench run that way).
  std::uint16_t port = 0;

  /// When non-empty, listen on a UNIX-domain stream socket at this
  /// filesystem path instead of TCP (`cpa_server --unix PATH`). The wire
  /// protocol is identical; `bind_address`/`port` are ignored. A stale
  /// socket file left by a dead process is unlinked before binding, and
  /// the path is unlinked again on Shutdown. Paths must fit in
  /// sockaddr_un (< 108 bytes).
  std::string unix_path;

  /// Hard cap on live connections; accepts beyond it are closed
  /// immediately after a best-effort JSON error frame.
  std::size_t max_connections = 1024;

  /// Frames larger than this are rejected (error reply, body skipped).
  std::size_t max_frame_bytes = server::kDefaultMaxFrameBytes;

  /// listen(2) backlog.
  int listen_backlog = 128;
};

/// \brief Monotonic transport counters (read at any time; TSan-clean).
struct TcpTransportStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  ///< over `max_connections`
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t framing_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;

  /// Router-mode counters (router.h). A plain transport leaves them 0;
  /// `cpa_server --router` merges the router's totals in before printing
  /// its shutdown stats line.
  std::uint64_t frames_forwarded = 0;
  std::uint64_t backend_reconnects = 0;
};

/// \brief Accepts TCP connections and speaks the framed wire protocol.
class TcpTransport {
 public:
  /// `handler` must outlive the transport.
  TcpTransport(FrameHandler& handler, const TcpTransportOptions& options = {});

  /// Drains and joins (Shutdown).
  ~TcpTransport();

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds, listens and starts the accept loop. Fails (IOError) when the
  /// address/port/path cannot be bound. Call at most once.
  Status Start();

  /// The port actually bound (resolves port 0 requests). 0 before Start
  /// and in UNIX-socket mode.
  std::uint16_t port() const { return port_; }

  /// Stops accepting, drains in-flight requests, closes every connection
  /// and joins all threads. Idempotent; safe to call from any thread
  /// except a connection handler.
  void Shutdown();

  /// Live connections right now.
  std::size_t num_connections() const {
    return num_connections_.load(std::memory_order_relaxed);
  }

  TcpTransportStats stats() const;

 private:
  struct Connection;

  void AcceptLoop();
  void ServeConnection(Connection* connection);

  /// Joins and erases finished connection handlers (accept-loop chore).
  void ReapFinished();

  FrameHandler& handler_;
  TcpTransportOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread accept_thread_;

  mutable std::mutex mutex_;  ///< guards `connections_`
  std::list<std::unique_ptr<Connection>> connections_;
  std::atomic<std::size_t> num_connections_{0};

  /// Stats counters (relaxed increments; `stats()` snapshots them).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
};

}  // namespace cpa

#endif  // CPA_SERVER_TCP_TRANSPORT_H_
