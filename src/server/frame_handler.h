#ifndef CPA_SERVER_FRAME_HANDLER_H_
#define CPA_SERVER_FRAME_HANDLER_H_

/// \file frame_handler.h
/// \brief The one-frame-in, one-frame-out dispatch interface.
///
/// `TcpTransport` owns sockets and framing; what happens to a decoded
/// frame is behind this interface. Two implementations exist:
///
/// - `ConsensusServer` — dispatches the frame against its own sessions
///   (a worker process, or the classic single-process server).
/// - `Router` — forwards the frame to one of N backend workers chosen by
///   consistent-hashing the session id (router.h).
///
/// The contract mirrors `ConsensusServer::HandleFrame`: never throw,
/// never block forever, always return a reply frame whose kind matches
/// the request's kind (errors included), and be safe to call from many
/// connection threads at once.

#include "server/framing.h"

namespace cpa {

/// \brief Anything that can answer one framed request with one framed reply.
class FrameHandler {
 public:
  virtual ~FrameHandler() = default;

  /// Handles one framed request and returns the framed reply. The reply's
  /// kind must equal the request's kind. Thread-safe.
  virtual server::Frame HandleFrame(const server::Frame& frame) = 0;
};

}  // namespace cpa

#endif  // CPA_SERVER_FRAME_HANDLER_H_
