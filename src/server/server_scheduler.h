#ifndef CPA_SERVER_SERVER_SCHEDULER_H_
#define CPA_SERVER_SERVER_SCHEDULER_H_

/// \file server_scheduler.h
/// \brief One shared `ThreadPool`, many session lanes, fair round-robin.
///
/// Under the multi-session server, one pool per session would oversubscribe
/// the machine (S sessions × N threads) and let one big session starve the
/// rest of pool bandwidth. The `ServerScheduler` replaces session-owned
/// pools: every session gets a `Lane` — an `Executor` it can treat exactly
/// like an owned pool — while the actual workers live in one shared
/// `ThreadPool`. Tasks are buffered per lane and drained in round-robin
/// lane order, so a session submitting thousands of sweep shards cannot
/// wedge itself ahead of a session submitting three.
///
/// Scheduling order never changes results: the sweep layer's partitioning
/// and merge trees are thread-count and execution-order invariant
/// (core/sweep/sweep_scheduler.h), so a fit through a lane is bit-identical
/// to the same fit on an owned pool — or on no pool at all.
///
/// Lifetime: lanes must not outlive the scheduler, and a lane must be idle
/// (no `SubmitAndWait` in flight) when destroyed — the session layer
/// guarantees both by serialising engine calls per session and destroying
/// sessions before the scheduler.

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "util/thread_pool.h"

namespace cpa {

/// \brief Multiplexes per-session work onto one shared pool, fairly.
class ServerScheduler {
 public:
  /// One session's submission endpoint. Behaves like an owned pool of
  /// `num_threads()` workers; actual execution interleaves fairly with
  /// every other lane of the scheduler.
  class Lane final : public Executor {
   public:
    ~Lane() override;

    Lane(const Lane&) = delete;
    Lane& operator=(const Lane&) = delete;

    void Submit(std::function<void()> task) override;
    std::size_t num_threads() const override;

   private:
    friend class ServerScheduler;
    struct Queue;
    Lane(ServerScheduler* scheduler, Queue* queue)
        : scheduler_(scheduler), queue_(queue) {}

    ServerScheduler* scheduler_;
    Queue* queue_;
  };

  /// Spawns the shared pool with `num_threads` workers (>= 1).
  explicit ServerScheduler(std::size_t num_threads);

  /// Joins the shared pool. Every lane must already be destroyed.
  ~ServerScheduler();

  ServerScheduler(const ServerScheduler&) = delete;
  ServerScheduler& operator=(const ServerScheduler&) = delete;

  /// Registers a new lane. The lane holds a reference to the scheduler and
  /// must be destroyed before it.
  std::unique_ptr<Lane> CreateLane();

  /// Workers in the shared pool.
  std::size_t num_threads() const { return pool_.num_threads(); }

  /// Currently registered lanes (diagnostics).
  std::size_t num_lanes() const;

 private:
  void Enqueue(Lane::Queue* queue, std::function<void()> task);
  void Unregister(Lane::Queue* queue);

  /// Pops one task from the next non-empty lane in round-robin order and
  /// runs it. Executed by pool workers, one call per enqueued task.
  void RunNext();

  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Lane::Queue>> lanes_;
  std::size_t cursor_ = 0;  ///< next lane index to drain from

  /// Declared last: destroyed first, so the pool drains its queued
  /// `RunNext` calls while `mutex_` and `lanes_` are still alive.
  ThreadPool pool_;
};

}  // namespace cpa

#endif  // CPA_SERVER_SERVER_SCHEDULER_H_
