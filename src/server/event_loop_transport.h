#ifndef CPA_SERVER_EVENT_LOOP_TRANSPORT_H_
#define CPA_SERVER_EVENT_LOOP_TRANSPORT_H_

/// \file event_loop_transport.h
/// \brief The epoll transport: a fixed pool of reactor threads moving
/// bytes, a dispatch pool running `FrameHandler::HandleFrame`, and
/// pipelined out-of-order responses over sequenced frames.
///
/// Thread-per-connection (tcp_transport.h) caps concurrent sessions at
/// thread count and convoys each connection's frames behind its slowest
/// request. This transport decouples both: `--io-threads N` reactor
/// threads multiplex *all* connections through level-triggered epoll on
/// non-blocking sockets, and requests execute on a separate dispatch
/// pool so engine work never runs on a reactor thread (dispatch threads
/// in turn push sweeps through the session's `ServerScheduler` lane,
/// exactly as the stdio and thread transports do — the scheduler stays
/// the only place engine work runs).
///
///     reactor 0 ── epoll ── listener + conns        dispatch pool
///     reactor 1 ── epoll ── conns            ──►    HandleFrame ──► ServerScheduler
///         ⋮          (recv / decode /               (lanes below)    lanes
///     reactor N-1    flush; no engine work)
///
/// ## Ordering & sequence contract (see framing.h, docs/API.md)
///
/// Per connection, decoded frames land in one of three lanes:
///
///   1. **Legacy lane** — unsequenced frames (flags == 0). Strict FIFO:
///      executed in arrival order, responses written in arrival order,
///      framing-error replies holding their queue position. A
///      pre-sequencing client cannot tell this transport from the
///      thread-per-connection one.
///   2. **Session lanes** — sequenced frames that may mutate state, keyed
///      by a cheap peek of the session id (binary: fixed offsets, like
///      the router; JSON: a conservative scan — when in doubt the frame
///      falls back to the legacy lane, which is always safe, only
///      slower). One session's mutations execute serially in arrival
///      order — per-session state is identical to serial execution — but
///      different sessions' lanes run concurrently.
///   3. **Fast lane** — sequenced frames that provably cannot mutate
///      (cached snapshot polls with refresh clear, list, methods).
///      Dispatched immediately, any number in flight: a cached poll
///      overtakes a slow refresh ahead of it in the pipe.
///
/// Responses are written in *completion* order, each echoing its
/// request's sequence id; clients match by id, not position. Mixing
/// sequenced and unsequenced frames on one connection is legal but their
/// relative response order is unspecified.
///
/// ## Backpressure
///
/// Writes are buffered per connection and flushed opportunistically; a
/// short or EAGAIN send arms `EPOLLOUT` and the reactor finishes the
/// flush as the socket drains (counted in `partial_writes` /
/// `wouldblock_events`). A connection exceeding `max_pipeline` requests
/// in flight or `write_high_watermark` buffered reply bytes has
/// `EPOLLIN` disarmed — it is paused, not dropped — and resumes as
/// responses drain.
///
/// Shutdown is a drain, as on the thread transport: stop accepting,
/// half-close every socket, wait for every dispatched request to finish
/// and its response to flush (bounded), then join the reactors.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "server/frame_handler.h"
#include "server/framing.h"
#include "server/transport.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Epoll reactor pool speaking the framed wire protocol with
/// pipelined out-of-order completion (`cpa_server --event-loop`).
class EventLoopTransport : public Transport {
 public:
  /// `handler` must outlive the transport.
  EventLoopTransport(FrameHandler& handler,
                     const TransportOptions& options = {});

  /// Drains and joins (Shutdown).
  ~EventLoopTransport() override;

  EventLoopTransport(const EventLoopTransport&) = delete;
  EventLoopTransport& operator=(const EventLoopTransport&) = delete;

  Status Start() override;

  std::uint16_t port() const override { return port_; }

  void Shutdown() override;

  std::size_t num_connections() const override {
    return num_connections_.load(std::memory_order_relaxed);
  }

  TransportStats stats() const override;

  /// Dispatch threads actually running (0 before Start) — surfaced in
  /// the `cpa_server` banner and the fig11 report config.
  std::size_t dispatch_threads() const {
    return dispatch_pool_ ? dispatch_pool_->num_threads() : 0;
  }

 private:
  struct Conn;
  struct Reactor;

  /// One decoded request waiting in a lane: either a frame to dispatch
  /// or a pre-encoded framing-error reply holding its FIFO slot.
  struct Pending {
    server::Frame request;
    bool premade = false;
    server::Frame reply;  ///< valid iff `premade`
  };

  void ReactorLoop(Reactor* reactor);
  void AcceptReady();
  void HandleReadable(Reactor* reactor, const std::shared_ptr<Conn>& conn);
  void HandleWritable(Reactor* reactor, const std::shared_ptr<Conn>& conn);
  void SweepClosable(Reactor* reactor);
  static void WakeReactor(Reactor* reactor);

  /// Routes one decoded frame (or framing error) into its lane.
  /// Reactor thread only.
  void EnqueueItem(const std::shared_ptr<Conn>& conn,
                   server::FrameDecoder::Item item);

  /// Lane runners (dispatch pool). Each executes ONE pending request,
  /// queues its reply, then resubmits itself while its queue is
  /// non-empty — the FIFO pool round-robins across lanes and
  /// connections, so one hot lane cannot starve the rest.
  void RunLegacyLane(const std::shared_ptr<Conn>& conn);
  void RunSessionLane(const std::shared_ptr<Conn>& conn,
                      const std::string& key);
  void RunDirect(const std::shared_ptr<Conn>& conn, Pending pending);

  /// Executes one pending request (handler call — never on a reactor).
  server::Frame Execute(Pending& pending);

  /// Appends one encoded reply to the connection's write buffer.
  void QueueReplyLocked(Conn* conn, const server::Frame& reply);

  /// Opportunistic non-blocking flush of the write buffer.
  void FlushLocked(Conn* conn);

  /// Recomputes read-pause state and the epoll interest mask, issuing
  /// an epoll_ctl MOD when it changed. Callable from any thread while
  /// the fd is open (the fd is closed only by the owning reactor).
  void UpdateInterestLocked(Conn* conn);

  /// True when the connection is fully drained and can be closed.
  static bool ClosableLocked(const Conn& conn);

  /// pending-task accounting: Begin before every dispatch-pool Submit,
  /// End as the task's last action. Shutdown waits for zero *before*
  /// destroying the pool, so a lane resubmit can never race
  /// `ThreadPool::~ThreadPool`.
  void BeginTask();
  void EndTask();

  FrameHandler& handler_;
  TransportOptions options_;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::mutex shutdown_mutex_;  ///< serializes Shutdown (dtor + explicit)
  bool shut_down_ = false;

  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::atomic<std::size_t> next_reactor_{0};
  std::unique_ptr<ThreadPool> dispatch_pool_;

  std::mutex pending_mutex_;
  std::condition_variable pending_cv_;
  std::size_t pending_tasks_ = 0;

  std::atomic<std::size_t> num_connections_{0};

  /// Stats counters (relaxed increments; `stats()` snapshots them).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_rejected_{0};
  std::atomic<std::uint64_t> frames_in_{0};
  std::atomic<std::uint64_t> frames_out_{0};
  std::atomic<std::uint64_t> framing_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};
  std::atomic<std::uint64_t> recv_calls_{0};
  std::atomic<std::uint64_t> send_calls_{0};
  std::atomic<std::uint64_t> partial_writes_{0};
  std::atomic<std::uint64_t> wouldblock_events_{0};
};

}  // namespace cpa

#endif  // CPA_SERVER_EVENT_LOOP_TRANSPORT_H_
