#include "simulation/dataset_factory.h"

#include <algorithm>
#include <cmath>

#include "simulation/crowd_simulator.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {

std::vector<PaperDatasetId> AllPaperDatasets() {
  return {PaperDatasetId::kImage, PaperDatasetId::kTopic, PaperDatasetId::kAspect,
          PaperDatasetId::kEntity, PaperDatasetId::kMovie};
}

std::string_view PaperDatasetName(PaperDatasetId id) {
  switch (id) {
    case PaperDatasetId::kImage:
      return "image";
    case PaperDatasetId::kTopic:
      return "topic";
    case PaperDatasetId::kAspect:
      return "aspect";
    case PaperDatasetId::kEntity:
      return "entity";
    case PaperDatasetId::kMovie:
      return "movie";
  }
  return "unknown";
}

PaperDatasetSpec PaperDatasetSpec::For(PaperDatasetId id) {
  PaperDatasetSpec spec;
  spec.id = id;
  switch (id) {
    case PaperDatasetId::kImage:
      // NUS-WIDE: up to 10 tags per image out of 81; ~30 candidates shown;
      // simple visual task; skewed worker activity; strong correlation.
      spec.items = 2000;
      spec.workers = 416;
      spec.labels = 81;
      spec.answers = 22920;
      spec.mean_labels_per_item = 4.0;
      spec.max_labels_per_item = 10;
      spec.correlation = 0.8;
      spec.latent_clusters = 12;
      spec.skewed_workers = true;
      spec.difficulty = 0.0;
      spec.candidate_set_size = 30;
      spec.attention_mean = 5.5;
      break;
    case PaperDatasetId::kTopic:
      // TREC microblog: up to 5 of 49 topics; text understanding needed.
      spec.items = 2000;
      spec.workers = 313;
      spec.labels = 49;
      spec.answers = 15080;
      spec.mean_labels_per_item = 2.5;
      spec.max_labels_per_item = 5;
      spec.correlation = 0.75;
      spec.latent_clusters = 8;
      spec.skewed_workers = false;
      spec.difficulty = 0.08;
      spec.candidate_set_size = 15;
      spec.attention_mean = 4.0;
      break;
    case PaperDatasetId::kAspect:
      // Restaurant reviews: up to 5 of 262 aspects; 20 candidates shown;
      // normal answer distribution; little label correlation; difficult.
      spec.items = 3710;
      spec.workers = 482;
      spec.labels = 262;
      spec.answers = 19780;
      spec.mean_labels_per_item = 2.5;
      spec.max_labels_per_item = 5;
      spec.correlation = 0.2;
      spec.latent_clusters = 20;
      spec.skewed_workers = false;
      spec.difficulty = 0.08;
      spec.candidate_set_size = 20;
      spec.attention_mean = 4.0;
      break;
    case PaperDatasetId::kEntity:
      // T-NER: word-level entity tags over 1450 surface labels; the
      // strongest label correlation of the five; difficult text task.
      spec.items = 2400;
      spec.workers = 517;
      spec.labels = 1450;
      spec.answers = 15510;
      spec.mean_labels_per_item = 2.0;
      spec.max_labels_per_item = 6;
      spec.correlation = 0.9;
      spec.latent_clusters = 40;
      spec.skewed_workers = false;
      spec.difficulty = 0.08;
      spec.candidate_set_size = 25;
      spec.attention_mean = 3.5;
      break;
    case PaperDatasetId::kMovie:
      // IMDB genres: up to ~4 of 22 genres; simple task; skewed activity;
      // little correlation between genres.
      spec.items = 500;
      spec.workers = 936;
      spec.labels = 22;
      spec.answers = 14430;
      spec.mean_labels_per_item = 2.5;
      spec.max_labels_per_item = 4;
      spec.correlation = 0.15;
      spec.latent_clusters = 5;
      spec.skewed_workers = true;
      spec.difficulty = 0.0;
      spec.candidate_set_size = 22;
      spec.attention_mean = 4.0;
      break;
  }
  return spec;
}

Result<Dataset> MakeDatasetFromSpec(const PaperDatasetSpec& spec,
                                    const FactoryOptions& options) {
  if (options.scale <= 0.0) {
    return Status::InvalidArgument("scale must be positive");
  }
  const auto scaled = [&](std::size_t value) {
    return std::max<std::size_t>(
        1, static_cast<std::size_t>(std::lround(value * options.scale)));
  };
  const std::size_t items = scaled(spec.items);
  const std::size_t workers = std::max<std::size_t>(5, scaled(spec.workers));

  Rng rng(options.seed ^ (static_cast<std::uint64_t>(spec.id) * 0x9E3779B9u));

  TruthConfig truth_config;
  truth_config.num_items = items;
  truth_config.num_labels = spec.labels;
  truth_config.num_clusters = spec.latent_clusters;
  truth_config.correlation = spec.correlation;
  truth_config.mean_labels_per_item = spec.mean_labels_per_item;
  truth_config.max_labels_per_item = spec.max_labels_per_item;
  CPA_ASSIGN_OR_RETURN(GroundTruth truth, GenerateGroundTruth(truth_config, rng));

  PopulationConfig population_config;
  population_config.num_workers = workers;
  population_config.num_labels = spec.labels;
  population_config.mix = options.mix;
  population_config.difficulty = spec.difficulty;
  CPA_ASSIGN_OR_RETURN(const std::vector<WorkerProfile> population,
                       GeneratePopulation(population_config, rng));

  SimulationConfig sim_config;
  sim_config.answers_per_item =
      std::max(1.0, static_cast<double>(spec.answers) / static_cast<double>(spec.items));
  sim_config.skewed_workers = spec.skewed_workers;
  sim_config.candidate_set_size = spec.candidate_set_size;
  sim_config.attention_mean = spec.attention_mean;
  CPA_ASSIGN_OR_RETURN(AnswerMatrix answers,
                       SimulateAnswers(truth, population, sim_config, rng));

  Dataset dataset;
  dataset.name = std::string(PaperDatasetName(spec.id));
  dataset.num_labels = spec.labels;
  dataset.answers = std::move(answers);
  dataset.ground_truth = std::move(truth.labels);
  CPA_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

Result<Dataset> MakePaperDataset(PaperDatasetId id, const FactoryOptions& options) {
  return MakeDatasetFromSpec(PaperDatasetSpec::For(id), options);
}

Result<Dataset> MakeScalabilityDataset(std::size_t num_items, std::size_t num_workers,
                                       std::size_t num_labels,
                                       double workers_per_item,
                                       const FactoryOptions& options) {
  Rng rng(options.seed ^ 0xABCDEF1234567890ULL);

  TruthConfig truth_config;
  truth_config.num_items = num_items;
  truth_config.num_labels = num_labels;
  truth_config.num_clusters = std::max<std::size_t>(2, num_labels / 3);
  truth_config.correlation = 0.7;
  truth_config.mean_labels_per_item = std::min(3.0, num_labels / 2.0);
  truth_config.max_labels_per_item = num_labels;
  CPA_ASSIGN_OR_RETURN(GroundTruth truth, GenerateGroundTruth(truth_config, rng));

  PopulationConfig population_config;
  population_config.num_workers = num_workers;
  population_config.num_labels = num_labels;
  population_config.mix = options.mix;
  CPA_ASSIGN_OR_RETURN(const std::vector<WorkerProfile> population,
                       GeneratePopulation(population_config, rng));

  SimulationConfig sim_config;
  sim_config.answers_per_item = workers_per_item;
  sim_config.candidate_set_size = num_labels;
  CPA_ASSIGN_OR_RETURN(AnswerMatrix answers,
                       SimulateAnswers(truth, population, sim_config, rng));

  Dataset dataset;
  dataset.name = StrFormat("synthetic-%zux%zu", num_items, num_workers);
  dataset.num_labels = num_labels;
  dataset.answers = std::move(answers);
  dataset.ground_truth = std::move(truth.labels);
  CPA_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

}  // namespace cpa
