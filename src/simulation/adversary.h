#ifndef CPA_SIMULATION_ADVERSARY_H_
#define CPA_SIMULATION_ADVERSARY_H_

/// \file adversary.h
/// \brief The adversarial workload generator: large seeded answer streams
/// with controllable hostile worker strategies.
///
/// The paper's robustness experiments are thin slices — Fig 4 sweeps one
/// spammer ratio, Fig 6 one arrival schedule. This generator turns them
/// into a scenario *matrix*: a stream is a ground truth (truth_generator.h)
/// plus a worker population in which every worker follows one of six
/// strategies —
///
///   - **honest**: an archetype profile (worker_profile.h) answering
///     through the paper's candidate-set simulator (crowd_simulator.h);
///   - **uniform-spammer** / **random-spammer**: the shared `SpammerSpec`
///     behaviour of the Fig 4 injection operator;
///   - **sticky-spammer**: one fixed multi-label set pasted on every item;
///   - **colluder**: copies a per-(clique, item) ringleader answer, with a
///     small mutation rate so cliques are near- but not perfectly identical;
///   - **sleeper**: honest until an activation point of the stream, then
///     drifting into spam over a configurable ramp —
///
/// with two orthogonal stream axes: heavy-tail per-item difficulty (a
/// Lomax draw subtracted from honest skills) and a bursty arrival schedule
/// (answers clump into a few time windows instead of arriving uniformly).
///
/// Everything is derived from `AdversaryConfig::seed` through per-entity
/// sub-RNGs, so generation is **bit-reproducible across 1..N generator
/// threads**: pass an `Executor` to parallelise the per-item answer pass —
/// each item derives its own RNG from (seed, item), so the thread count
/// and shard boundaries never touch the stream (the same contract as
/// `SweepScheduler`, tested in tests/simulation/adversary_test.cc).

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "simulation/crowd_simulator.h"
#include "simulation/perturbations.h"
#include "simulation/worker_profile.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief What one worker of an adversarial stream does. The first entry
/// is the only cooperative one.
enum class WorkerStrategy {
  kHonest,
  kUniformSpammer,
  kStickySpammer,
  kRandomSpammer,
  kColluder,
  kSleeper,
};

/// Stable display name ("honest", "sticky-spammer", ...).
std::string_view WorkerStrategyName(WorkerStrategy strategy);

/// \brief Strategy proportions of the worker population.
struct StrategyMix {
  double honest = 1.0;
  double uniform_spammer = 0.0;
  double sticky_spammer = 0.0;
  double random_spammer = 0.0;
  double colluder = 0.0;
  double sleeper = 0.0;

  /// Proportions must be non-negative and sum to 1 (±1e-6).
  Status Validate() const;
};

/// \brief When answers arrive relative to the stream clock in [0, 1).
enum class ArrivalPattern {
  kUniform,  ///< i.i.d. uniform timestamps (Fig 6's protocol)
  kBursty,   ///< Gaussian bursts around a few centres + uniform background
};

/// \brief Everything that defines one adversarial scenario.
struct AdversaryConfig {
  std::uint64_t seed = 20180417;

  /// Stream dimensions.
  std::size_t num_items = 300;
  std::size_t num_workers = 80;
  std::size_t num_labels = 12;
  std::size_t num_clusters = 5;  ///< latent truth clusters (truth_generator.h)
  double answers_per_item = 7.0;

  /// Worker strategies and, for the honest/sleeper pool, the archetype mix
  /// their skill profiles are drawn from (spammer archetype shares here
  /// would double-count — strategies own the adversarial fractions).
  StrategyMix strategies;
  PopulationMix honest_mix;  ///< default set by the constructor below

  /// Colluders: `num_cliques` independent rings; each answer copies the
  /// clique's per-item ringleader set verbatim with probability
  /// `collusion_fidelity`, else mutates it by one label.
  std::size_t num_cliques = 2;
  double collusion_fidelity = 0.9;

  /// Sleepers: honest while the stream clock is below `sleeper_activation`,
  /// then the per-answer spam probability ramps linearly from 0 to 1 over
  /// `sleeper_ramp` of the stream.
  double sleeper_activation = 0.5;
  double sleeper_ramp = 0.25;

  /// Heavy-tail item difficulty: per item a Lomax(shape) draw scaled by
  /// `difficulty_scale`, capped at `difficulty_cap`, subtracted from honest
  /// sensitivities (and half of it from specificities). Shape 0 disables.
  double difficulty_tail_shape = 0.0;
  double difficulty_scale = 0.08;
  double difficulty_cap = 0.4;

  /// Arrival schedule: timestamps are bucketed into `num_batches` equal
  /// time windows (empty windows are dropped, so bursty schedules can
  /// yield fewer, spikier batches).
  ArrivalPattern arrival = ArrivalPattern::kUniform;
  std::size_t num_batches = 10;
  std::size_t num_bursts = 3;
  double burst_concentration = 8.0;  ///< higher = narrower bursts

  /// Candidate sets, attention budgets, spam set sizes (crowd_simulator.h).
  SimulationConfig simulation;

  AdversaryConfig();

  Status Validate() const;
};

/// \brief One generated stream: the dataset (answers + ground truth), the
/// arrival-ordered batch plan, and the per-worker/per-item adversarial
/// metadata the robustness tests assert against.
struct AdversarialStream {
  Dataset dataset;
  BatchPlan plan;

  /// Strategy per worker id.
  std::vector<WorkerStrategy> strategies;

  /// Clique index per worker; `kNoClique` for non-colluders.
  static constexpr std::size_t kNoClique = static_cast<std::size_t>(-1);
  std::vector<std::size_t> clique_of;

  /// Lomax difficulty per item (0 when the tail is disabled).
  std::vector<double> item_difficulty;

  /// Fraction of answers contributed by non-honest workers.
  double AdversarialShare() const;
};

/// \brief Generates the stream for `config`. With a non-null `executor`
/// the per-item answer pass runs in parallel; the result is bit-identical
/// for any executor (including none).
Result<AdversarialStream> GenerateAdversarialStream(
    const AdversaryConfig& config, Executor* executor = nullptr);

/// \brief One named cell of the standard scenario matrix.
struct AdversarialScenario {
  std::string name;
  std::string description;
  AdversaryConfig config;

  /// Degenerate scenarios (adversaries are the majority of the stream) are
  /// exempt from the "CPA beats MV" robustness invariant.
  bool degenerate = false;
};

/// \brief The standard scenario matrix shared by the fig12 bench and the
/// robustness suite: one scenario per adversary family plus a clean
/// baseline and a degenerate spam-majority stress. `scale` multiplies the
/// item/worker counts (floored at test-viable minimums).
std::vector<AdversarialScenario> StandardScenarioMatrix(
    std::uint64_t seed = 20180417, double scale = 1.0);

}  // namespace cpa

#endif  // CPA_SIMULATION_ADVERSARY_H_
