#include "simulation/crowd_simulator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/logging.h"

namespace cpa {

Status SimulationConfig::Validate() const {
  if (answers_per_item < 1.0) {
    return Status::InvalidArgument("answers_per_item must be >= 1");
  }
  if (zipf_exponent <= 0.0) {
    return Status::InvalidArgument("zipf_exponent must be positive");
  }
  if (candidate_set_size == 0) {
    return Status::InvalidArgument("candidate_set_size must be positive");
  }
  if (max_load_factor < 1.0) {
    return Status::InvalidArgument("max_load_factor must be >= 1");
  }
  if (confusable_fraction < 0.0 || confusable_fraction > 1.0) {
    return Status::InvalidArgument("confusable_fraction must lie in [0, 1]");
  }
  if (spam_set_mean < 1.0) {
    return Status::InvalidArgument("spam_set_mean must be >= 1");
  }
  if (attention_mean < 0.0) {
    return Status::InvalidArgument("attention_mean must be non-negative");
  }
  return Status::OK();
}

LabelSet BuildCandidateSet(const LabelSet& truth, std::span<const double> profile,
                           const SimulationConfig& config, Rng& rng) {
  LabelSet candidates = truth;
  const std::size_t num_labels = profile.size();
  const std::size_t target = std::min(config.candidate_set_size, num_labels);
  const std::size_t max_attempts = 50 * (target + 1);
  std::size_t attempts = 0;
  while (candidates.size() < target && attempts < max_attempts) {
    ++attempts;
    LabelId c;
    if (rng.NextBernoulli(config.confusable_fraction)) {
      c = static_cast<LabelId>(rng.NextCategorical(profile));
    } else {
      c = static_cast<LabelId>(rng.NextBounded(num_labels));
    }
    candidates.Add(c);
  }
  return candidates;
}

LabelSet SimulateOneAnswer(const WorkerProfile& worker, const LabelSet& truth,
                           const LabelSet& candidates, const SimulationConfig& config,
                           Rng& rng) {
  LabelSet answer;
  switch (worker.type) {
    case WorkerType::kUniformSpammer:
      answer.Add(worker.uniform_label);
      return answer;
    case WorkerType::kRandomSpammer: {
      const auto pool = candidates.labels();
      if (pool.empty()) {
        answer.Add(worker.uniform_label);
        return answer;
      }
      std::size_t size = 1 + static_cast<std::size_t>(
                                 rng.NextPoisson(config.spam_set_mean - 1.0));
      size = std::min(size, pool.size());
      for (std::size_t index : rng.SampleWithoutReplacement(pool.size(), size)) {
        answer.Add(pool[index]);
      }
      return answer;
    }
    default:
      break;
  }
  // Honest workers: Bernoulli per candidate label, driven by per-label
  // sensitivity (true labels) and specificity (false candidates).
  for (LabelId c : candidates) {
    const bool is_true = truth.Contains(c);
    const double p_report =
        is_true ? worker.sensitivity[c] : 1.0 - worker.specificity[c];
    if (rng.NextBernoulli(p_report)) answer.Add(c);
  }
  // Attention budget: the worker stops after a few labels, so some labels
  // they would endorse go unreported (partial completeness).
  if (config.attention_mean > 0.0) {
    std::size_t budget =
        1 + static_cast<std::size_t>(rng.NextPoisson(config.attention_mean - 1.0));
    if (answer.size() > budget) {
      const auto pool = answer.labels();
      LabelSet capped;
      for (std::size_t index : rng.SampleWithoutReplacement(pool.size(), budget)) {
        capped.Add(pool[index]);
      }
      answer = std::move(capped);
    }
  }
  if (answer.empty()) {
    // Workers must submit something; they pick a random candidate (or, if
    // the candidate set were somehow empty, their fallback label).
    const auto pool = candidates.labels();
    if (pool.empty()) {
      answer.Add(worker.uniform_label);
    } else {
      answer.Add(pool[rng.NextBounded(pool.size())]);
    }
  }
  return answer;
}

Result<AnswerMatrix> SimulateAnswers(const GroundTruth& truth,
                                     std::span<const WorkerProfile> workers,
                                     const SimulationConfig& config, Rng& rng) {
  CPA_RETURN_NOT_OK(config.Validate());
  if (workers.empty()) return Status::InvalidArgument("empty worker pool");
  const std::size_t num_items = truth.labels.size();
  const std::size_t num_workers = workers.size();
  AnswerMatrix matrix(num_items, num_workers);

  // Zipf-skewed worker activity: a fixed permutation makes "worker 0 of the
  // Zipf ranking" a random worker rather than always index 0.
  std::vector<WorkerId> rank_to_worker(num_workers);
  std::iota(rank_to_worker.begin(), rank_to_worker.end(), 0u);
  rng.Shuffle(rank_to_worker);

  // Per-worker load cap for the skewed assignment.
  const double mean_load = config.answers_per_item *
                           static_cast<double>(num_items) /
                           static_cast<double>(num_workers);
  const std::size_t load_cap = std::max<std::size_t>(
      10, static_cast<std::size_t>(config.max_load_factor * mean_load));
  std::vector<std::size_t> load(num_workers, 0);

  std::vector<WorkerId> scratch;
  for (std::size_t i = 0; i < num_items; ++i) {
    // Redundancy: floor + Bernoulli(fraction), at least one answer.
    const double want = config.answers_per_item;
    std::size_t redundancy = static_cast<std::size_t>(want);
    if (rng.NextBernoulli(want - std::floor(want))) ++redundancy;
    redundancy = std::clamp<std::size_t>(redundancy, 1, num_workers);

    scratch.clear();
    if (config.skewed_workers) {
      // Sample distinct workers by Zipf rank, respecting the load cap.
      std::size_t guard = 0;
      while (scratch.size() < redundancy && guard < 100 * redundancy + 100) {
        ++guard;
        const WorkerId u =
            rank_to_worker[rng.NextZipf(num_workers, config.zipf_exponent)];
        if (load[u] >= load_cap) continue;
        if (std::find(scratch.begin(), scratch.end(), u) == scratch.end()) {
          scratch.push_back(u);
        }
      }
      // Guard tripped (tiny pools): fill uniformly.
      for (std::size_t index :
           rng.SampleWithoutReplacement(num_workers, redundancy)) {
        if (scratch.size() >= redundancy) break;
        const WorkerId u = static_cast<WorkerId>(index);
        if (std::find(scratch.begin(), scratch.end(), u) == scratch.end()) {
          scratch.push_back(u);
        }
      }
    } else {
      for (std::size_t index :
           rng.SampleWithoutReplacement(num_workers, redundancy)) {
        scratch.push_back(static_cast<WorkerId>(index));
      }
    }

    const auto profile = truth.cluster_profiles.Row(truth.item_cluster[i]);
    const LabelSet candidates =
        BuildCandidateSet(truth.labels[i], profile, config, rng);
    for (WorkerId u : scratch) {
      LabelSet answer =
          SimulateOneAnswer(workers[u], truth.labels[i], candidates, config, rng);
      const Status added =
          matrix.Add(static_cast<ItemId>(i), u, std::move(answer));
      CPA_CHECK(added.ok()) << added.ToString();
      ++load[u];
    }
  }
  return matrix;
}

}  // namespace cpa
