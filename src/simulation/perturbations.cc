#include "simulation/perturbations.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "simulation/worker_profile.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {

Result<Dataset> Sparsify(const Dataset& dataset, double keep_fraction, Rng& rng) {
  if (keep_fraction < 0.0 || keep_fraction > 1.0) {
    return Status::InvalidArgument("keep_fraction must lie in [0, 1]");
  }
  const std::size_t total = dataset.answers.num_answers();
  const std::size_t keep = static_cast<std::size_t>(std::lround(keep_fraction * total));
  std::vector<std::size_t> indices(total);
  std::iota(indices.begin(), indices.end(), 0u);
  rng.Shuffle(indices);
  indices.resize(keep);

  Dataset sparse = dataset;
  sparse.answers = dataset.answers.Subset(indices);
  return sparse;
}

Result<Dataset> InjectSpammers(const Dataset& dataset,
                               const SpammerInjectionOptions& options, Rng& rng) {
  if (options.spam_answer_fraction < 0.0 || options.spam_answer_fraction >= 1.0) {
    return Status::InvalidArgument("spam_answer_fraction must lie in [0, 1)");
  }
  if (options.answers_per_spammer == 0) {
    return Status::InvalidArgument("answers_per_spammer must be positive");
  }
  const std::size_t original = dataset.answers.num_answers();
  // spam / (original + spam) = f  =>  spam = original * f / (1 - f).
  const std::size_t spam_answers = static_cast<std::size_t>(std::lround(
      original * options.spam_answer_fraction / (1.0 - options.spam_answer_fraction)));
  if (spam_answers == 0) return dataset;

  const std::size_t num_spammers = std::max<std::size_t>(
      1, (spam_answers + options.answers_per_spammer - 1) / options.answers_per_spammer);

  const std::size_t num_items = dataset.answers.num_items();
  const std::size_t old_workers = dataset.answers.num_workers();

  Dataset injected = dataset;
  injected.answers = AnswerMatrix(num_items, old_workers + num_spammers);
  for (const Answer& a : dataset.answers.answers()) {
    CPA_CHECK_OK(injected.answers.Add(a.item, a.worker, a.labels));
  }

  std::size_t produced = 0;
  for (std::size_t s = 0; s < num_spammers && produced < spam_answers; ++s) {
    const WorkerId spammer = static_cast<WorkerId>(old_workers + s);
    // The shared spammer behaviour definition (worker_profile.h): the same
    // spec drives the adversarial stream generator, so "spammer" means one
    // thing across the robustness harnesses.
    const SpammerSpec spec =
        SampleSpammerSpec(options.uniform_share, dataset.num_labels, rng);
    const std::size_t quota =
        std::min(options.answers_per_spammer, spam_answers - produced);
    // Each spammer touches `quota` distinct random items.
    const std::size_t capped = std::min(quota, num_items);
    for (std::size_t index : rng.SampleWithoutReplacement(num_items, capped)) {
      const ItemId item = static_cast<ItemId>(index);
      LabelSet answer = SpamAnswer(spec, dataset.num_labels, rng);
      CPA_CHECK_OK(injected.answers.Add(item, spammer, std::move(answer)));
      ++produced;
    }
  }
  return injected;
}

Result<Dataset> InjectLabelDependencies(const Dataset& dataset, double fraction,
                                        Rng& rng) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must lie in [0, 1]");
  }
  if (!dataset.has_ground_truth()) {
    return Status::FailedPrecondition("label-dependency injection needs ground truth");
  }
  // Collect every (answer, missing-true-label) pair for answers that
  // contain at least one correct label.
  struct MissingLabel {
    std::size_t answer_index;
    LabelId label;
  };
  std::vector<MissingLabel> missing;
  const auto answers = dataset.answers.answers();
  for (std::size_t index = 0; index < answers.size(); ++index) {
    const Answer& a = answers[index];
    const LabelSet& truth = dataset.ground_truth[a.item];
    if (a.labels.IntersectionSize(truth) == 0) continue;
    for (LabelId c : truth.Difference(a.labels)) {
      missing.push_back(MissingLabel{index, c});
    }
  }
  const std::size_t to_add =
      static_cast<std::size_t>(std::lround(fraction * missing.size()));
  rng.Shuffle(missing);
  missing.resize(to_add);

  // Group additions per answer, then rebuild the matrix.
  std::vector<std::vector<LabelId>> additions(answers.size());
  for (const MissingLabel& m : missing) additions[m.answer_index].push_back(m.label);

  Dataset enriched = dataset;
  enriched.answers =
      AnswerMatrix(dataset.answers.num_items(), dataset.answers.num_workers());
  for (std::size_t index = 0; index < answers.size(); ++index) {
    LabelSet labels = answers[index].labels;
    for (LabelId c : additions[index]) labels.Add(c);
    CPA_CHECK_OK(
        enriched.answers.Add(answers[index].item, answers[index].worker, labels));
  }
  return enriched;
}

std::size_t BatchPlan::TotalAnswers() const {
  std::size_t total = 0;
  for (const auto& batch : batches) total += batch.size();
  return total;
}

std::vector<std::size_t> BatchPlan::Prefix(std::size_t k) const {
  std::vector<std::size_t> prefix;
  for (std::size_t b = 0; b < std::min(k, batches.size()); ++b) {
    prefix.insert(prefix.end(), batches[b].begin(), batches[b].end());
  }
  return prefix;
}

BatchPlan MakeWorkerBatches(const AnswerMatrix& answers, std::size_t workers_per_batch,
                            Rng& rng) {
  CPA_CHECK_GE(workers_per_batch, 1u);
  std::vector<WorkerId> active;
  for (WorkerId u = 0; u < answers.num_workers(); ++u) {
    if (!answers.AnswersOfWorker(u).empty()) active.push_back(u);
  }
  rng.Shuffle(active);

  BatchPlan plan;
  for (std::size_t start = 0; start < active.size(); start += workers_per_batch) {
    std::vector<std::size_t> batch;
    const std::size_t end = std::min(active.size(), start + workers_per_batch);
    for (std::size_t w = start; w < end; ++w) {
      const auto indices = answers.AnswersOfWorker(active[w]);
      batch.insert(batch.end(), indices.begin(), indices.end());
    }
    plan.batches.push_back(std::move(batch));
  }
  return plan;
}

BatchPlan MakeArrivalSchedule(const AnswerMatrix& answers, std::size_t num_steps,
                              Rng& rng) {
  CPA_CHECK_GE(num_steps, 1u);
  std::vector<std::size_t> indices(answers.num_answers());
  std::iota(indices.begin(), indices.end(), 0u);
  rng.Shuffle(indices);

  BatchPlan plan;
  plan.batches.resize(num_steps);
  const std::size_t total = indices.size();
  for (std::size_t step = 0; step < num_steps; ++step) {
    const std::size_t begin = step * total / num_steps;
    const std::size_t end = (step + 1) * total / num_steps;
    plan.batches[step].assign(indices.begin() + begin, indices.begin() + end);
  }
  return plan;
}

}  // namespace cpa
