#include "simulation/worker_profile.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

/// Skills are clamped away from 0/1 so likelihoods stay finite.
double ClampSkill(double value) { return std::clamp(value, 0.02, 0.98); }

}  // namespace

std::string_view WorkerTypeName(WorkerType type) {
  switch (type) {
    case WorkerType::kReliable:
      return "reliable";
    case WorkerType::kNormal:
      return "normal";
    case WorkerType::kSloppy:
      return "sloppy";
    case WorkerType::kUniformSpammer:
      return "uniform-spammer";
    case WorkerType::kRandomSpammer:
      return "random-spammer";
  }
  return "unknown";
}

PopulationMix PopulationMix::PaperSimulationDefault() {
  PopulationMix mix;
  mix.reliable = 0.43;
  mix.normal = 0.0;
  mix.sloppy = 0.32;
  mix.uniform_spammer = 0.125;
  mix.random_spammer = 0.125;
  return mix;
}

PopulationMix PopulationMix::EmpiricalZhao() {
  // 27 % reliable, 16 % normal, 18 % sloppy, 38 % spammers; the remaining
  // 1 % of the survey is unclassified and folded into "normal".
  PopulationMix mix;
  mix.reliable = 0.27;
  mix.normal = 0.17;
  mix.sloppy = 0.18;
  mix.uniform_spammer = 0.19;
  mix.random_spammer = 0.19;
  return mix;
}

PopulationMix PopulationMix::AllReliable() {
  PopulationMix mix;
  mix.reliable = 1.0;
  return mix;
}

Status PopulationMix::Validate() const {
  const double parts[] = {reliable, normal, sloppy, uniform_spammer, random_spammer};
  double total = 0.0;
  for (double p : parts) {
    if (p < 0.0) return Status::InvalidArgument("negative mix proportion");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(StrFormat("mix sums to %.6f, expected 1", total));
  }
  return Status::OK();
}

QualityParams QualityParams::ForType(WorkerType type) {
  QualityParams params;
  switch (type) {
    case WorkerType::kReliable:
      params = {0.90, 0.04, 0.97, 0.015};
      break;
    case WorkerType::kNormal:
      params = {0.75, 0.07, 0.93, 0.03};
      break;
    case WorkerType::kSloppy:
      params = {0.45, 0.10, 0.85, 0.05};
      break;
    case WorkerType::kUniformSpammer:
      // Nominal near-chance profile; actual behaviour is the fixed label.
      params = {0.10, 0.05, 0.90, 0.05};
      break;
    case WorkerType::kRandomSpammer:
      params = {0.30, 0.10, 0.70, 0.10};
      break;
  }
  return params;
}

double WorkerProfile::MeanSensitivity() const {
  if (sensitivity.empty()) return 0.0;
  double total = 0.0;
  for (double s : sensitivity) total += s;
  return total / static_cast<double>(sensitivity.size());
}

double WorkerProfile::MeanSpecificity() const {
  if (specificity.empty()) return 0.0;
  double total = 0.0;
  for (double s : specificity) total += s;
  return total / static_cast<double>(specificity.size());
}

SpammerSpec SampleSpammerSpec(double uniform_share, std::size_t num_labels,
                              Rng& rng) {
  SpammerSpec spec;
  spec.uniform = rng.NextBernoulli(uniform_share);
  // Drawn for random spammers too: the RNG stream is the same whichever
  // way the coin fell (the Fig 4 byte-identity contract relies on this).
  spec.fixed_label =
      num_labels > 0 ? static_cast<LabelId>(rng.NextBounded(num_labels)) : 0;
  return spec;
}

LabelSet SpamAnswer(const SpammerSpec& spec, std::size_t num_labels, Rng& rng) {
  LabelSet answer;
  if (spec.uniform || num_labels == 0) {
    answer.Add(spec.fixed_label);
    return answer;
  }
  const std::size_t size =
      1 + static_cast<std::size_t>(rng.NextPoisson(spec.spam_set_mean - 1.0));
  for (std::size_t draw = 0; draw < size; ++draw) {
    answer.Add(static_cast<LabelId>(rng.NextBounded(num_labels)));
  }
  return answer;
}

WorkerType SampleWorkerType(const PopulationMix& mix, Rng& rng) {
  const double weights[] = {mix.reliable, mix.normal, mix.sloppy, mix.uniform_spammer,
                            mix.random_spammer};
  switch (rng.NextCategorical(weights)) {
    case 0:
      return WorkerType::kReliable;
    case 1:
      return WorkerType::kNormal;
    case 2:
      return WorkerType::kSloppy;
    case 3:
      return WorkerType::kUniformSpammer;
    default:
      return WorkerType::kRandomSpammer;
  }
}

std::size_t LabelExpertiseGroup(LabelId label, std::size_t num_groups) {
  if (num_groups <= 1) return 0;
  return label % num_groups;
}

WorkerProfile GenerateWorkerProfile(WorkerType type, const PopulationConfig& config,
                                    Rng& rng) {
  WorkerProfile profile;
  profile.type = type;
  profile.sensitivity.resize(config.num_labels);
  profile.specificity.resize(config.num_labels);
  profile.uniform_label =
      config.num_labels > 0
          ? static_cast<LabelId>(rng.NextBounded(config.num_labels))
          : 0;
  profile.expertise_group =
      config.num_expertise_groups > 1
          ? static_cast<std::size_t>(rng.NextBounded(config.num_expertise_groups))
          : 0;

  const QualityParams params = QualityParams::ForType(type);
  const bool is_spammer =
      type == WorkerType::kUniformSpammer || type == WorkerType::kRandomSpammer;
  const double difficulty = is_spammer ? 0.0 : config.difficulty;

  for (LabelId c = 0; c < config.num_labels; ++c) {
    double sens = params.sensitivity_mean - difficulty +
                  params.sensitivity_stddev * rng.NextGaussian();
    double spec = params.specificity_mean - 0.5 * difficulty +
                  params.specificity_stddev * rng.NextGaussian();
    if (!is_spammer && config.num_expertise_groups > 1) {
      if (LabelExpertiseGroup(c, config.num_expertise_groups) ==
          profile.expertise_group) {
        sens += config.expertise_boost;
        spec += 0.5 * config.expertise_boost;
      } else {
        sens -= 0.5 * config.expertise_boost;
      }
    }
    profile.sensitivity[c] = ClampSkill(sens);
    profile.specificity[c] = ClampSkill(spec);
  }
  return profile;
}

Result<std::vector<WorkerProfile>> GeneratePopulation(const PopulationConfig& config,
                                                      Rng& rng) {
  CPA_RETURN_NOT_OK(config.mix.Validate());
  if (config.num_labels == 0) {
    return Status::InvalidArgument("population needs a non-empty label universe");
  }
  std::vector<WorkerProfile> population;
  population.reserve(config.num_workers);
  for (std::size_t u = 0; u < config.num_workers; ++u) {
    population.push_back(
        GenerateWorkerProfile(SampleWorkerType(config.mix, rng), config, rng));
  }
  return population;
}

}  // namespace cpa
