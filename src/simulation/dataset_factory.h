#ifndef CPA_SIMULATION_DATASET_FACTORY_H_
#define CPA_SIMULATION_DATASET_FACTORY_H_

/// \file dataset_factory.h
/// \brief Factories for the paper's evaluation datasets.
///
/// The paper evaluates on five crowdsourced datasets (Table 3) that are not
/// publicly available; per DESIGN.md §3 we substitute calibrated
/// simulations that match the published statistics (#items, #labels,
/// #workers, #answers) and characteristics (§5.1: answer-distribution
/// skew, task difficulty, label-correlation strength). A separate factory
/// builds the large-scale synthetic datasets used by the scalability
/// experiments (Fig 7).

#include <cstddef>
#include <string_view>
#include <vector>

#include "data/dataset.h"
#include "simulation/truth_generator.h"
#include "simulation/worker_profile.h"
#include "util/status.h"

namespace cpa {

/// \brief The five evaluation datasets of Table 3.
enum class PaperDatasetId {
  kImage,   ///< NUS-WIDE image tagging
  kTopic,   ///< TREC-2011 microblog topic annotation
  kAspect,  ///< restaurant-review aspect extraction
  kEntity,  ///< T-NER tweet entity extraction
  kMovie,   ///< IMDB movie-genre tagging
};

/// All five ids, in Table 3 order.
std::vector<PaperDatasetId> AllPaperDatasets();

/// Stable name ("image", "topic", "aspect", "entity", "movie").
std::string_view PaperDatasetName(PaperDatasetId id);

/// \brief Declarative specification of one dataset (Table 3 + §5.1).
struct PaperDatasetSpec {
  PaperDatasetId id = PaperDatasetId::kImage;
  std::size_t items = 0;    ///< questions posted (answered items)
  std::size_t workers = 0;  ///< worker pool size
  std::size_t labels = 0;   ///< label universe C
  std::size_t answers = 0;  ///< total collected answers

  double mean_labels_per_item = 3.0;
  std::size_t max_labels_per_item = 10;
  double correlation = 0.7;       ///< label-correlation strength
  std::size_t latent_clusters = 8;
  bool skewed_workers = false;    ///< answer-distribution skew
  double difficulty = 0.0;        ///< task difficulty (skill penalty)
  std::size_t candidate_set_size = 20;

  /// Honest workers' attention budget (crowd_simulator.h); answers are
  /// partially complete because workers stop after a few labels.
  double attention_mean = 3.0;

  /// The published spec of a dataset.
  static PaperDatasetSpec For(PaperDatasetId id);
};

/// \brief Options common to all factories.
struct FactoryOptions {
  std::uint64_t seed = 20180417;  ///< deterministic by default

  /// Uniform scale factor on items / workers / answers, for fast tests and
  /// quick bench runs (redundancy is preserved). 1.0 = paper size.
  double scale = 1.0;

  /// Worker-type mix (paper simulation default unless overridden).
  PopulationMix mix = PopulationMix::PaperSimulationDefault();
};

/// Builds one of the five paper datasets.
Result<Dataset> MakePaperDataset(PaperDatasetId id, const FactoryOptions& options = {});

/// Builds a dataset from an explicit spec (used by tests and ablations).
Result<Dataset> MakeDatasetFromSpec(const PaperDatasetSpec& spec,
                                    const FactoryOptions& options);

/// \brief Large-scale synthetic dataset for the runtime experiments
/// (§5.1 "Large-Scale Simulation", Fig 7): `num_items` items, `num_workers`
/// workers, `num_labels` labels, `workers_per_item` answers per item.
Result<Dataset> MakeScalabilityDataset(std::size_t num_items, std::size_t num_workers,
                                       std::size_t num_labels,
                                       double workers_per_item,
                                       const FactoryOptions& options = {});

}  // namespace cpa

#endif  // CPA_SIMULATION_DATASET_FACTORY_H_
