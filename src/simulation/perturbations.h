#ifndef CPA_SIMULATION_PERTURBATIONS_H_
#define CPA_SIMULATION_PERTURBATIONS_H_

/// \file perturbations.h
/// \brief Dataset perturbation operators behind the robustness experiments.
///
/// - `Sparsify` removes a random share of answers (Fig 3).
/// - `InjectSpammers` adds answers from fresh spammer workers until they
///   make up a target share of all answers (Fig 4).
/// - `InjectLabelDependencies` adds missing true labels to answers that
///   already contain at least one correct label (Fig 5).
/// - `MakeWorkerBatches` / `MakeArrivalSchedule` split answers for the
///   online-learning experiments (Fig 6 / Table 5) and SVI batching.

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpa {

/// \brief Keeps a random `keep_fraction` of answers (sparsity level
/// 1 − keep_fraction in the paper's terms). Dimensions are preserved.
Result<Dataset> Sparsify(const Dataset& dataset, double keep_fraction, Rng& rng);

/// \brief Options for spammer injection.
struct SpammerInjectionOptions {
  /// Target fraction of *all* answers (original + injected) contributed by
  /// the injected spammers; e.g. 0.4 reproduces the paper's 40 % setting.
  double spam_answer_fraction = 0.2;

  /// Injected population is split evenly between uniform and random
  /// spammers (the paper's gamma/2 + gamma/2 convention).
  double uniform_share = 0.5;

  /// Answers each injected spammer produces (controls how many spammer
  /// accounts are created).
  std::size_t answers_per_spammer = 50;
};

/// \brief Appends spammer workers and their answers to `dataset`.
Result<Dataset> InjectSpammers(const Dataset& dataset,
                               const SpammerInjectionOptions& options, Rng& rng);

/// \brief Adds a fraction of the *missing true labels* to worker answers
/// that contain at least one correct label (the Fig 5 protocol). Requires
/// ground truth.
Result<Dataset> InjectLabelDependencies(const Dataset& dataset, double fraction,
                                        Rng& rng);

/// \brief A partition of answer indices into ordered batches.
struct BatchPlan {
  /// Indices into `AnswerMatrix::answers()`, grouped per batch.
  std::vector<std::vector<std::size_t>> batches;

  std::size_t num_batches() const { return batches.size(); }
  std::size_t TotalAnswers() const;

  /// Concatenation of the first `k` batches (data "arrived so far").
  std::vector<std::size_t> Prefix(std::size_t k) const;
};

/// \brief Groups answers by worker and packs ~`workers_per_batch` workers
/// per batch, in shuffled worker order — the SVI batching of Algorithm 2
/// ("each batch contains the answers of a fixed number of workers").
BatchPlan MakeWorkerBatches(const AnswerMatrix& answers, std::size_t workers_per_batch,
                            Rng& rng);

/// \brief Splits answers uniformly at random into `num_steps` batches of
/// (nearly) equal size — the data-arrival protocol of Fig 6 ("new worker
/// answers arrive in steps of 10% of the dataset size").
BatchPlan MakeArrivalSchedule(const AnswerMatrix& answers, std::size_t num_steps,
                              Rng& rng);

}  // namespace cpa

#endif  // CPA_SIMULATION_PERTURBATIONS_H_
