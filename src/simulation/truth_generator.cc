#include "simulation/truth_generator.h"

#include <algorithm>
#include <cmath>

#include "util/string_utils.h"

namespace cpa {

Status TruthConfig::Validate() const {
  if (num_items == 0) return Status::InvalidArgument("num_items must be positive");
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  if (num_clusters == 0) return Status::InvalidArgument("num_clusters must be positive");
  if (correlation < 0.0 || correlation > 1.0) {
    return Status::InvalidArgument("correlation must lie in [0, 1]");
  }
  if (mean_labels_per_item < 1.0) {
    return Status::InvalidArgument("mean_labels_per_item must be >= 1");
  }
  if (max_labels_per_item == 0 || max_labels_per_item > num_labels) {
    return Status::InvalidArgument(
        StrFormat("max_labels_per_item must lie in [1, %zu]", num_labels));
  }
  if (core_mass <= 0.0 || core_mass > 1.0) {
    return Status::InvalidArgument("core_mass must lie in (0, 1]");
  }
  return Status::OK();
}

LabelSet SampleLabelSet(std::span<const double> profile, std::size_t size, Rng& rng) {
  LabelSet set;
  const std::size_t target = std::min(size, profile.size());
  // Rejection on duplicates; bounded attempts keep this O(target) in the
  // common case and terminate even for degenerate profiles.
  const std::size_t max_attempts = 50 * (target + 1);
  std::size_t attempts = 0;
  while (set.size() < target && attempts < max_attempts) {
    ++attempts;
    const LabelId c = static_cast<LabelId>(rng.NextCategorical(profile));
    if (!set.Contains(c)) set.Add(c);
  }
  // Fill any remainder deterministically with the highest-mass labels.
  if (set.size() < target) {
    std::vector<LabelId> order(profile.size());
    for (std::size_t c = 0; c < profile.size(); ++c) order[c] = static_cast<LabelId>(c);
    std::sort(order.begin(), order.end(),
              [&](LabelId a, LabelId b) { return profile[a] > profile[b]; });
    for (LabelId c : order) {
      if (set.size() >= target) break;
      if (!set.Contains(c)) set.Add(c);
    }
  }
  return set;
}

Result<GroundTruth> GenerateGroundTruth(const TruthConfig& config, Rng& rng) {
  CPA_RETURN_NOT_OK(config.Validate());
  const std::size_t C = config.num_labels;
  const std::size_t K = config.num_clusters;

  GroundTruth truth;
  truth.cluster_profiles.Reset(K, C);

  // Global popularity: a mildly concentrated Dirichlet draw, shared by all
  // clusters. This is what remains at correlation 0.
  std::vector<double> popularity(C);
  {
    const std::vector<double> alpha(C, 2.0);
    rng.NextDirichlet(alpha, popularity);
  }

  // Core size defaults to ~2.5x the mean set size.
  std::size_t core_size = config.core_size;
  if (core_size == 0) {
    core_size = static_cast<std::size_t>(std::lround(2.5 * config.mean_labels_per_item));
  }
  core_size = std::clamp<std::size_t>(core_size, 2, C);

  for (std::size_t k = 0; k < K; ++k) {
    // Pick the cluster's core labels and give them `core_mass` of the core
    // profile, spread by a Dirichlet draw.
    const auto core = rng.SampleWithoutReplacement(C, core_size);
    std::vector<double> core_weights(core_size);
    const std::vector<double> alpha(core_size, 1.5);
    rng.NextDirichlet(alpha, core_weights);

    std::vector<double> core_profile(C, 0.0);
    const double off_core = (1.0 - config.core_mass) / static_cast<double>(C);
    for (std::size_t c = 0; c < C; ++c) core_profile[c] = off_core;
    for (std::size_t j = 0; j < core_size; ++j) {
      core_profile[core[j]] += config.core_mass * core_weights[j];
    }

    auto row = truth.cluster_profiles.Row(k);
    for (std::size_t c = 0; c < C; ++c) {
      row[c] = (1.0 - config.correlation) * popularity[c] +
               config.correlation * core_profile[c];
    }
    NormalizeInPlace(row);
  }

  truth.labels.resize(config.num_items);
  truth.item_cluster.resize(config.num_items);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    const std::size_t k = static_cast<std::size_t>(rng.NextBounded(K));
    truth.item_cluster[i] = k;
    std::size_t size = 1 + static_cast<std::size_t>(
                               rng.NextPoisson(config.mean_labels_per_item - 1.0));
    size = std::clamp<std::size_t>(size, 1, config.max_labels_per_item);
    truth.labels[i] = SampleLabelSet(truth.cluster_profiles.Row(k), size, rng);
  }
  return truth;
}

}  // namespace cpa
