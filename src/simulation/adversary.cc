#include "simulation/adversary.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "simulation/truth_generator.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {
namespace {

/// Domain-separation salts for the per-entity sub-RNG derivation.
constexpr std::uint64_t kTruthSalt = 0xAD5E72A1u;
constexpr std::uint64_t kWorkerSalt = 0xAD5E72A2u;
constexpr std::uint64_t kAssignSalt = 0xAD5E72A3u;
constexpr std::uint64_t kItemSalt = 0xAD5E72A4u;
constexpr std::uint64_t kCliqueSalt = 0xAD5E72A5u;

/// splitmix64 finalizer over (a, b): the seed-derivation mix. Every
/// sub-RNG is `Rng(MixSeed(...))`, never an offset of another stream, so
/// no two entities share a generator tail.
std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t z = a + 0x9E3779B97F4A7C15ULL * (b + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Same clamp as worker_profile.cc: skills stay away from 0/1 so
/// likelihoods stay finite.
double ClampSkill(double value) { return std::clamp(value, 0.02, 0.98); }

/// Everything fixed about one worker before any answer is generated
/// (drawn sequentially in the worker pass, read-only afterwards).
struct WorkerState {
  WorkerStrategy strategy = WorkerStrategy::kHonest;
  WorkerProfile profile;  ///< honest behaviour basis (archetype skills)
  SpammerSpec spam;       ///< uniform/random spam behaviour
  LabelSet sticky_set;    ///< the sticky spammer's pasted answer
  std::size_t clique = AdversarialStream::kNoClique;
};

/// One (item, worker) answer slot with its arrival timestamp. Slots are
/// generated item-major, so a slot's index in the vector *is* its flat
/// index into the final `AnswerMatrix::answers()`.
struct Slot {
  std::size_t item = 0;
  WorkerId worker = 0;
  double time = 0.0;
};

/// Honest answer with the item's difficulty folded into the skills.
LabelSet HonestAnswer(const WorkerProfile& profile, double difficulty,
                      const LabelSet& truth, const LabelSet& candidates,
                      const SimulationConfig& simulation, Rng& rng) {
  if (difficulty <= 0.0) {
    return SimulateOneAnswer(profile, truth, candidates, simulation, rng);
  }
  WorkerProfile harder = profile;
  for (std::size_t c = 0; c < harder.sensitivity.size(); ++c) {
    harder.sensitivity[c] = ClampSkill(harder.sensitivity[c] - difficulty);
    harder.specificity[c] =
        ClampSkill(harder.specificity[c] - 0.5 * difficulty);
  }
  return SimulateOneAnswer(harder, truth, candidates, simulation, rng);
}

/// The per-(clique, item) ringleader answer. Derived from its own seed so
/// every clique member — on any generator thread — computes the same set.
LabelSet CliqueConsensus(const AdversaryConfig& config, std::size_t clique,
                         std::size_t item, const LabelSet& candidates) {
  Rng rng(MixSeed(MixSeed(config.seed, kCliqueSalt ^ clique), item));
  const auto pool = candidates.labels();
  LabelSet consensus;
  if (pool.empty()) {
    consensus.Add(0);
    return consensus;
  }
  std::size_t size =
      1 + static_cast<std::size_t>(
              rng.NextPoisson(config.simulation.spam_set_mean - 1.0));
  size = std::min(size, pool.size());
  for (std::size_t index : rng.SampleWithoutReplacement(pool.size(), size)) {
    consensus.Add(pool[index]);
  }
  return consensus;
}

/// Colluder answer: the clique consensus, mutated by one label with
/// probability 1 − fidelity (so cliques are near- but not perfectly
/// identical — perfect copies are trivially detectable).
LabelSet ColluderAnswer(const AdversaryConfig& config, const LabelSet& base,
                        const LabelSet& candidates, Rng& rng) {
  if (rng.NextBernoulli(config.collusion_fidelity)) return base;
  const auto members = base.labels();
  if (members.size() > 1 && rng.NextBernoulli(0.5)) {
    const LabelId drop = members[rng.NextBounded(members.size())];
    std::vector<LabelId> keep;
    keep.reserve(members.size() - 1);
    for (LabelId c : members) {
      if (c != drop) keep.push_back(c);
    }
    return LabelSet::FromUnsorted(std::move(keep));
  }
  LabelSet mutated = base;
  const auto pool = candidates.labels();
  if (!pool.empty()) mutated.Add(pool[rng.NextBounded(pool.size())]);
  return mutated;
}

/// The sleeper's probability of answering as a spammer at stream clock `t`.
double SleeperSpamProbability(const AdversaryConfig& config, double t) {
  if (t <= config.sleeper_activation) return 0.0;
  return std::min(1.0, (t - config.sleeper_activation) / config.sleeper_ramp);
}

}  // namespace

std::string_view WorkerStrategyName(WorkerStrategy strategy) {
  switch (strategy) {
    case WorkerStrategy::kHonest:
      return "honest";
    case WorkerStrategy::kUniformSpammer:
      return "uniform-spammer";
    case WorkerStrategy::kStickySpammer:
      return "sticky-spammer";
    case WorkerStrategy::kRandomSpammer:
      return "random-spammer";
    case WorkerStrategy::kColluder:
      return "colluder";
    case WorkerStrategy::kSleeper:
      return "sleeper";
  }
  return "unknown";
}

Status StrategyMix::Validate() const {
  const double parts[] = {honest,         uniform_spammer, sticky_spammer,
                          random_spammer, colluder,        sleeper};
  double total = 0.0;
  for (double p : parts) {
    if (p < 0.0) return Status::InvalidArgument("negative strategy proportion");
    total += p;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument(
        StrFormat("strategy mix sums to %.6f, expected 1", total));
  }
  return Status::OK();
}

AdversaryConfig::AdversaryConfig() {
  // The honest/sleeper pool has no spammer archetypes — adversarial
  // fractions live in `strategies`, not here.
  honest_mix.reliable = 0.5;
  honest_mix.normal = 0.3;
  honest_mix.sloppy = 0.2;
  simulation.answers_per_item = answers_per_item;
  simulation.candidate_set_size = 10;
}

Status AdversaryConfig::Validate() const {
  if (num_items == 0 || num_workers == 0 || num_labels == 0) {
    return Status::InvalidArgument("stream dimensions must be positive");
  }
  if (answers_per_item < 1.0) {
    return Status::InvalidArgument("answers_per_item must be >= 1");
  }
  CPA_RETURN_NOT_OK(strategies.Validate());
  CPA_RETURN_NOT_OK(honest_mix.Validate());
  if (honest_mix.uniform_spammer > 0.0 || honest_mix.random_spammer > 0.0) {
    return Status::InvalidArgument(
        "honest_mix must not contain spammer archetypes (use strategies)");
  }
  CPA_RETURN_NOT_OK(simulation.Validate());
  if (strategies.colluder > 0.0 && num_cliques == 0) {
    return Status::InvalidArgument("colluders need at least one clique");
  }
  if (collusion_fidelity < 0.0 || collusion_fidelity > 1.0) {
    return Status::InvalidArgument("collusion_fidelity must lie in [0, 1]");
  }
  if (sleeper_activation < 0.0 || sleeper_activation > 1.0) {
    return Status::InvalidArgument("sleeper_activation must lie in [0, 1]");
  }
  if (sleeper_ramp <= 0.0) {
    return Status::InvalidArgument("sleeper_ramp must be positive");
  }
  if (difficulty_tail_shape < 0.0 || difficulty_scale < 0.0 ||
      difficulty_cap < 0.0 || difficulty_cap >= 1.0) {
    return Status::InvalidArgument("invalid difficulty-tail parameters");
  }
  if (num_batches == 0) {
    return Status::InvalidArgument("num_batches must be positive");
  }
  if (arrival == ArrivalPattern::kBursty &&
      (num_bursts == 0 || burst_concentration <= 0.0)) {
    return Status::InvalidArgument("bursty arrival needs bursts");
  }
  return Status::OK();
}

double AdversarialStream::AdversarialShare() const {
  const auto answers = dataset.answers.answers();
  if (answers.empty()) return 0.0;
  std::size_t hostile = 0;
  for (const Answer& a : answers) {
    if (strategies[a.worker] != WorkerStrategy::kHonest) ++hostile;
  }
  return static_cast<double>(hostile) / static_cast<double>(answers.size());
}

Result<AdversarialStream> GenerateAdversarialStream(
    const AdversaryConfig& config, Executor* executor) {
  CPA_RETURN_NOT_OK(config.Validate());

  // Ground truth from its own sub-RNG.
  TruthConfig truth_config;
  truth_config.num_items = config.num_items;
  truth_config.num_labels = config.num_labels;
  truth_config.num_clusters = config.num_clusters;
  truth_config.max_labels_per_item =
      std::min<std::size_t>(truth_config.max_labels_per_item, config.num_labels);
  truth_config.mean_labels_per_item =
      std::min(truth_config.mean_labels_per_item,
               static_cast<double>(truth_config.max_labels_per_item));
  Rng truth_rng(MixSeed(config.seed, kTruthSalt));
  auto truth = GenerateGroundTruth(truth_config, truth_rng);
  CPA_RETURN_NOT_OK(truth.status());

  // Worker pass (sequential): strategy, honest skill basis, spam spec,
  // sticky set and clique membership per worker.
  Rng worker_rng(MixSeed(config.seed, kWorkerSalt));
  PopulationConfig population_config;
  population_config.num_workers = config.num_workers;
  population_config.num_labels = config.num_labels;
  population_config.mix = config.honest_mix;
  const double strategy_weights[] = {
      config.strategies.honest,         config.strategies.uniform_spammer,
      config.strategies.sticky_spammer, config.strategies.random_spammer,
      config.strategies.colluder,       config.strategies.sleeper};
  std::vector<WorkerState> workers(config.num_workers);
  for (WorkerState& state : workers) {
    state.strategy = static_cast<WorkerStrategy>(
        worker_rng.NextCategorical(strategy_weights));
    state.profile = GenerateWorkerProfile(
        SampleWorkerType(config.honest_mix, worker_rng), population_config,
        worker_rng);
    state.spam = SampleSpammerSpec(
        state.strategy == WorkerStrategy::kUniformSpammer ? 1.0 : 0.0,
        config.num_labels, worker_rng);
    state.spam.spam_set_mean = config.simulation.spam_set_mean;
    std::size_t sticky_size = std::min<std::size_t>(
        config.num_labels,
        2 + static_cast<std::size_t>(worker_rng.NextPoisson(
                std::max(0.0, config.simulation.spam_set_mean - 1.0))));
    std::vector<LabelId> sticky;
    for (std::size_t index :
         worker_rng.SampleWithoutReplacement(config.num_labels, sticky_size)) {
      sticky.push_back(static_cast<LabelId>(index));
    }
    state.sticky_set = LabelSet::FromUnsorted(std::move(sticky));
    if (state.strategy == WorkerStrategy::kColluder) {
      state.clique = worker_rng.NextBounded(config.num_cliques);
    }
  }

  // Assignment pass (sequential): per-item difficulty, worker slots and
  // arrival timestamps. Slots are item-major, so slot index == flat index
  // into the final answer matrix.
  Rng assign_rng(MixSeed(config.seed, kAssignSalt));
  AdversarialStream stream;
  stream.item_difficulty.assign(config.num_items, 0.0);
  std::vector<Slot> slots;
  slots.reserve(static_cast<std::size_t>(
      config.answers_per_item * static_cast<double>(config.num_items) + 16));
  std::vector<std::size_t> item_offset(config.num_items + 1, 0);
  for (std::size_t i = 0; i < config.num_items; ++i) {
    if (config.difficulty_tail_shape > 0.0) {
      // Lomax (shifted Pareto) tail via inverse CDF.
      const double u = assign_rng.NextDouble();
      const double lomax =
          config.difficulty_scale *
          (std::pow(1.0 - u, -1.0 / config.difficulty_tail_shape) - 1.0);
      stream.item_difficulty[i] = std::min(config.difficulty_cap, lomax);
    }
    const double want = config.answers_per_item;
    std::size_t redundancy = static_cast<std::size_t>(want);
    if (assign_rng.NextBernoulli(want - std::floor(want))) ++redundancy;
    redundancy = std::clamp<std::size_t>(redundancy, 1, config.num_workers);
    for (std::size_t index :
         assign_rng.SampleWithoutReplacement(config.num_workers, redundancy)) {
      Slot slot;
      slot.item = i;
      slot.worker = static_cast<WorkerId>(index);
      if (config.arrival == ArrivalPattern::kUniform) {
        slot.time = assign_rng.NextDouble();
      } else {
        // Bursty: most answers clump around `num_bursts` centres; a 15 %
        // uniform background keeps every window non-degenerate.
        if (assign_rng.NextBernoulli(0.15)) {
          slot.time = assign_rng.NextDouble();
        } else {
          const std::size_t burst = assign_rng.NextBounded(config.num_bursts);
          const double centre = (static_cast<double>(burst) + 0.5) /
                                static_cast<double>(config.num_bursts);
          const double width =
              1.0 / (static_cast<double>(config.num_bursts) *
                     config.burst_concentration);
          slot.time = centre + width * assign_rng.NextGaussian();
        }
      }
      slot.time = std::clamp(slot.time, 0.0, 1.0 - 1e-9);
      slots.push_back(slot);
    }
    item_offset[i + 1] = slots.size();
  }

  // Arrival order: rank slots by timestamp (flat index breaks ties, so the
  // order is total and deterministic). A slot's rank fraction is the
  // stream clock sleepers drift on.
  std::vector<std::size_t> arrival_order(slots.size());
  for (std::size_t s = 0; s < slots.size(); ++s) arrival_order[s] = s;
  std::sort(arrival_order.begin(), arrival_order.end(),
            [&](std::size_t a, std::size_t b) {
              if (slots[a].time != slots[b].time) {
                return slots[a].time < slots[b].time;
              }
              return a < b;
            });
  std::vector<double> stream_clock(slots.size(), 0.0);
  for (std::size_t rank = 0; rank < arrival_order.size(); ++rank) {
    stream_clock[arrival_order[rank]] =
        static_cast<double>(rank) / static_cast<double>(slots.size());
  }

  // Answer pass (parallel over items): every item derives its own RNG from
  // (seed, item) and writes only its own slots, so the executor's thread
  // count and shard boundaries cannot influence the stream.
  std::vector<LabelSet> answer_sets(slots.size());
  const GroundTruth& ground_truth = truth.value();
  auto generate_item = [&](std::size_t i) {
    Rng item_rng(MixSeed(MixSeed(config.seed, kItemSalt), i));
    const auto profile_row =
        ground_truth.cluster_profiles.Row(ground_truth.item_cluster[i]);
    const LabelSet candidates = BuildCandidateSet(
        ground_truth.labels[i], profile_row, config.simulation, item_rng);
    const double difficulty = stream.item_difficulty[i];
    std::vector<std::optional<LabelSet>> clique_answers(config.num_cliques);
    for (std::size_t s = item_offset[i]; s < item_offset[i + 1]; ++s) {
      const WorkerState& worker = workers[slots[s].worker];
      switch (worker.strategy) {
        case WorkerStrategy::kHonest:
          answer_sets[s] =
              HonestAnswer(worker.profile, difficulty, ground_truth.labels[i],
                           candidates, config.simulation, item_rng);
          break;
        case WorkerStrategy::kUniformSpammer:
        case WorkerStrategy::kRandomSpammer:
          answer_sets[s] = SpamAnswer(worker.spam, config.num_labels, item_rng);
          break;
        case WorkerStrategy::kStickySpammer:
          answer_sets[s] = worker.sticky_set;
          break;
        case WorkerStrategy::kColluder: {
          auto& consensus = clique_answers[worker.clique];
          if (!consensus.has_value()) {
            consensus = CliqueConsensus(config, worker.clique, i, candidates);
          }
          answer_sets[s] =
              ColluderAnswer(config, *consensus, candidates, item_rng);
          break;
        }
        case WorkerStrategy::kSleeper: {
          const double spam_p =
              SleeperSpamProbability(config, stream_clock[s]);
          if (item_rng.NextBernoulli(spam_p)) {
            answer_sets[s] =
                SpamAnswer(worker.spam, config.num_labels, item_rng);
          } else {
            answer_sets[s] = HonestAnswer(worker.profile, difficulty,
                                          ground_truth.labels[i], candidates,
                                          config.simulation, item_rng);
          }
          break;
        }
      }
    }
  };
  ParallelFor(
      executor, config.num_items,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) generate_item(i);
      },
      /*min_shard=*/1);

  // Materialise the matrix in slot (= flat) order, then bucket the arrival
  // ranking into time windows for the batch plan.
  AnswerMatrix matrix(config.num_items, config.num_workers);
  for (std::size_t s = 0; s < slots.size(); ++s) {
    const Status added =
        matrix.Add(static_cast<ItemId>(slots[s].item), slots[s].worker,
                   std::move(answer_sets[s]));
    CPA_CHECK(added.ok()) << added.ToString();
  }
  std::vector<std::vector<std::size_t>> windows(config.num_batches);
  for (std::size_t flat : arrival_order) {
    const std::size_t window = std::min(
        config.num_batches - 1,
        static_cast<std::size_t>(slots[flat].time *
                                 static_cast<double>(config.num_batches)));
    windows[window].push_back(flat);
  }
  for (auto& window : windows) {
    if (!window.empty()) stream.plan.batches.push_back(std::move(window));
  }

  stream.dataset.name = StrFormat("adversarial-%llu",
                                  static_cast<unsigned long long>(config.seed));
  stream.dataset.num_labels = config.num_labels;
  stream.dataset.answers = std::move(matrix);
  stream.dataset.ground_truth = std::move(truth.value().labels);
  stream.strategies.resize(config.num_workers);
  stream.clique_of.resize(config.num_workers);
  for (std::size_t u = 0; u < config.num_workers; ++u) {
    stream.strategies[u] = workers[u].strategy;
    stream.clique_of[u] = workers[u].clique;
  }
  return stream;
}

std::vector<AdversarialScenario> StandardScenarioMatrix(std::uint64_t seed,
                                                        double scale) {
  const auto scaled = [scale](std::size_t n, std::size_t floor_value) {
    return std::max<std::size_t>(
        floor_value,
        static_cast<std::size_t>(std::lround(static_cast<double>(n) * scale)));
  };
  const auto base = [&] {
    AdversaryConfig config;
    config.seed = seed;
    config.num_items = scaled(360, 48);
    config.num_workers = scaled(120, 24);
    config.num_labels = 12;
    config.answers_per_item = 7.0;
    config.num_batches = 10;
    return config;
  };

  std::vector<AdversarialScenario> matrix;

  {
    AdversarialScenario scenario;
    scenario.name = "baseline-mixed";
    scenario.description =
        "honest archetype population only (reliable/normal/sloppy), uniform "
        "arrival — the control column";
    scenario.config = base();
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "spammer-flood";
    scenario.description =
        "55% spam accounts: uniform, sticky and random spammers side by side "
        "(Fig 4 generalised past its two ratios)";
    scenario.config = base();
    scenario.config.strategies.honest = 0.45;
    scenario.config.strategies.uniform_spammer = 0.20;
    scenario.config.strategies.sticky_spammer = 0.15;
    scenario.config.strategies.random_spammer = 0.20;
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "colluding-cliques";
    scenario.description =
        "40% colluders in 2 cliques copying a per-item ringleader at 95% "
        "fidelity — correlated error, the regime model-free voting cannot "
        "separate";
    scenario.config = base();
    scenario.config.strategies.honest = 0.60;
    scenario.config.strategies.colluder = 0.40;
    scenario.config.num_cliques = 2;
    scenario.config.collusion_fidelity = 0.95;
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "sleeper-drift";
    scenario.description =
        "45% sleepers: honest for the first 40% of the stream, then drifting "
        "into spam over the next 30% — reliability is non-stationary";
    scenario.config = base();
    scenario.config.strategies.honest = 0.55;
    scenario.config.strategies.sleeper = 0.45;
    scenario.config.sleeper_activation = 0.4;
    scenario.config.sleeper_ramp = 0.3;
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "heavy-tail-difficulty";
    scenario.description =
        "Lomax(1.2) per-item difficulty subtracted from honest skills, plus "
        "15% random spammers — a few items are near-impossible";
    scenario.config = base();
    scenario.config.strategies.honest = 0.85;
    scenario.config.strategies.random_spammer = 0.15;
    scenario.config.difficulty_tail_shape = 1.2;
    scenario.config.difficulty_scale = 0.08;
    scenario.config.difficulty_cap = 0.4;
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "bursty-storm";
    scenario.description =
        "3 narrow arrival bursts instead of a uniform schedule, with 50% "
        "mixed adversaries — batch sizes spike an order of magnitude";
    scenario.config = base();
    scenario.config.arrival = ArrivalPattern::kBursty;
    scenario.config.num_bursts = 3;
    scenario.config.burst_concentration = 8.0;
    scenario.config.strategies.honest = 0.50;
    scenario.config.strategies.uniform_spammer = 0.10;
    scenario.config.strategies.random_spammer = 0.20;
    scenario.config.strategies.sleeper = 0.20;
    matrix.push_back(std::move(scenario));
  }
  {
    AdversarialScenario scenario;
    scenario.name = "spam-majority";
    scenario.description =
        "80% adversarial accounts — past any consensus method's breakdown "
        "point; scored for the record, exempt from the CPA-beats-MV "
        "invariant";
    scenario.config = base();
    scenario.config.strategies.honest = 0.20;
    scenario.config.strategies.uniform_spammer = 0.30;
    scenario.config.strategies.sticky_spammer = 0.20;
    scenario.config.strategies.random_spammer = 0.30;
    scenario.degenerate = true;
    matrix.push_back(std::move(scenario));
  }
  return matrix;
}

}  // namespace cpa
