#ifndef CPA_SIMULATION_WORKER_PROFILE_H_
#define CPA_SIMULATION_WORKER_PROFILE_H_

/// \file worker_profile.h
/// \brief Worker archetypes and per-label skill profiles.
///
/// The paper distinguishes five worker types (§2.1, Appendix A): reliable,
/// normal, sloppy, uniform spammers and random spammers, characterised by
/// sensitivity (true-positive rate) and specificity (true-negative rate).
/// Its simulations (§5.1) distribute the population as 43 % reliable, 32 %
/// sloppy and 25 % spammers (split evenly between random and uniform).
/// Profiles are *per label*: requirement (R2) — a worker can be an expert
/// for some labels and weak for others — is realised by expertise groups
/// that boost a worker's skill on a subset of labels (this is what makes
/// the per-label communities of Fig 9 emerge).

#include <cstddef>
#include <string_view>
#include <vector>

#include "data/label_set.h"
#include "data/types.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpa {

/// \brief The five worker archetypes of the paper.
enum class WorkerType {
  kReliable,
  kNormal,
  kSloppy,
  kUniformSpammer,
  kRandomSpammer,
};

/// Stable display name ("reliable", "uniform-spammer", ...).
std::string_view WorkerTypeName(WorkerType type);

/// \brief Worker-type proportions of a simulated population.
struct PopulationMix {
  double reliable = 0.0;
  double normal = 0.0;
  double sloppy = 0.0;
  double uniform_spammer = 0.0;
  double random_spammer = 0.0;

  /// §5.1 simulation default: alpha=43 % reliable, beta=32 % sloppy,
  /// gamma=25 % spammers split evenly.
  static PopulationMix PaperSimulationDefault();

  /// The empirical population reported by Zhao et al. [28] (Appendix A):
  /// 38 % spammers, 18 % sloppy, 16 % normal, 27 % reliable (rescaled to
  /// sum to one).
  static PopulationMix EmpiricalZhao();

  /// A population with no faulty workers (for recovery tests).
  static PopulationMix AllReliable();

  /// Proportions must be non-negative and sum to 1 (±1e-6).
  Status Validate() const;
};

/// \brief Gaussian skill parameters of one archetype.
struct QualityParams {
  double sensitivity_mean = 0.5;
  double sensitivity_stddev = 0.0;
  double specificity_mean = 0.5;
  double specificity_stddev = 0.0;

  /// Default parameters per archetype, following the two-coin
  /// characterisation of Appendix A (reliable: high/high, sloppy: low
  /// sensitivity, spammers: near-chance).
  static QualityParams ForType(WorkerType type);
};

/// \brief A concrete simulated worker: type plus per-label skills.
struct WorkerProfile {
  WorkerType type = WorkerType::kNormal;

  /// P(worker reports label c | c is true), per label.
  std::vector<double> sensitivity;

  /// P(worker omits label c | c is false), per label.
  std::vector<double> specificity;

  /// The single label a uniform spammer always answers.
  LabelId uniform_label = 0;

  /// Expertise group index (labels of this group get boosted skill).
  std::size_t expertise_group = 0;

  /// Mean skill over labels (used by audits and tests).
  double MeanSensitivity() const;
  double MeanSpecificity() const;
};

/// \brief Behavioural profile of one spam account: *what it answers*, as
/// opposed to the skill parameters above. This is the single definition of
/// spammer behaviour shared by the Fig 4 injection operator
/// (`InjectSpammers`, simulation/perturbations.h) and the adversarial
/// stream generator (simulation/adversary.h), so every harness means the
/// same thing by "uniform spammer" and "random spammer".
struct SpammerSpec {
  /// Uniform spammers repeat `fixed_label` on every item; random spammers
  /// draw a fresh label set per answer.
  bool uniform = true;

  /// The label a uniform spammer always submits.
  LabelId fixed_label = 0;

  /// Mean answer-set size of a random spammer; sizes are
  /// 1 + Poisson(mean − 1).
  double spam_set_mean = 2.0;
};

/// Samples a spec: a Bernoulli(`uniform_share`) coin picks the kind, then
/// the fixed label is drawn from the universe. The label is drawn for
/// random spammers too, so the RNG stream does not depend on how the coin
/// fell.
SpammerSpec SampleSpammerSpec(double uniform_share, std::size_t num_labels,
                              Rng& rng);

/// One spam answer under `spec` over a `num_labels` universe. Uniform
/// specs consume no randomness; random specs draw the set size and then
/// one label per draw (duplicates collapse, so sets can come out smaller).
LabelSet SpamAnswer(const SpammerSpec& spec, std::size_t num_labels, Rng& rng);

/// \brief Configuration for generating a worker population.
struct PopulationConfig {
  std::size_t num_workers = 0;
  std::size_t num_labels = 0;
  PopulationMix mix = PopulationMix::PaperSimulationDefault();

  /// Task difficulty in [0, ~0.15]: subtracted from non-spammer skill means
  /// ("tasks requiring understanding of unstructured text are more
  /// difficult", §5.1).
  double difficulty = 0.0;

  /// Number of per-label expertise groups (R2 / Fig 9); 1 disables.
  std::size_t num_expertise_groups = 3;

  /// Additive sensitivity boost on a worker's expert labels and penalty
  /// (half the boost) elsewhere.
  double expertise_boost = 0.08;
};

/// Samples an archetype according to `mix`.
WorkerType SampleWorkerType(const PopulationMix& mix, Rng& rng);

/// Generates one worker of the given type.
WorkerProfile GenerateWorkerProfile(WorkerType type, const PopulationConfig& config,
                                    Rng& rng);

/// Generates a full population. Type counts follow `config.mix` in
/// expectation. Fails when the config is invalid.
Result<std::vector<WorkerProfile>> GeneratePopulation(const PopulationConfig& config,
                                                      Rng& rng);

/// The expertise group a label belongs to (round-robin partition).
std::size_t LabelExpertiseGroup(LabelId label, std::size_t num_groups);

}  // namespace cpa

#endif  // CPA_SIMULATION_WORKER_PROFILE_H_
