#ifndef CPA_SIMULATION_TRUTH_GENERATOR_H_
#define CPA_SIMULATION_TRUTH_GENERATOR_H_

/// \file truth_generator.h
/// \brief Cluster-structured ground-truth generation.
///
/// The CPA model's central assumption (R3) is that items group into latent
/// clusters whose members share label co-occurrence structure (Fig 1). The
/// generator realises this directly: each latent cluster owns a label
/// profile that concentrates mass on a small "core" of co-occurring labels;
/// the `correlation` knob blends that core against a global label
/// popularity distribution, so correlation 0 produces (near) independent
/// labels and correlation 1 produces sharply clustered label sets. The
/// paper's §5.1 simulation draws truth "based on a multinomial
/// distribution" — this is that, with controllable structure.

#include <cstddef>
#include <vector>

#include "data/label_set.h"
#include "data/types.h"
#include "util/matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpa {

/// \brief Knobs of the ground-truth generator.
struct TruthConfig {
  std::size_t num_items = 0;
  std::size_t num_labels = 0;

  /// Number of latent item clusters (the generative analogue of τ).
  std::size_t num_clusters = 5;

  /// Label-correlation strength in [0, 1]; see file comment.
  double correlation = 0.7;

  /// Mean (and cap) of the per-item label-set size; sizes are
  /// 1 + Poisson(mean − 1) clamped to [1, max].
  double mean_labels_per_item = 3.0;
  std::size_t max_labels_per_item = 10;

  /// Mass a cluster's core receives at correlation 1.
  double core_mass = 0.9;

  /// Number of core labels per cluster; 0 derives it from the set size.
  std::size_t core_size = 0;

  Status Validate() const;
};

/// \brief Generated truth: label sets plus the latent structure that
/// produced them (kept for calibration checks and Fig 1 analysis).
struct GroundTruth {
  std::vector<LabelSet> labels;            ///< per item
  std::vector<std::size_t> item_cluster;   ///< latent cluster per item
  Matrix cluster_profiles;                 ///< num_clusters × C label probabilities

  std::size_t num_clusters() const { return cluster_profiles.rows(); }
  std::size_t num_labels() const { return cluster_profiles.cols(); }
};

/// Generates ground truth; fails on invalid config.
Result<GroundTruth> GenerateGroundTruth(const TruthConfig& config, Rng& rng);

/// Samples a label set of size `size` (distinct labels) from `profile`.
LabelSet SampleLabelSet(std::span<const double> profile, std::size_t size, Rng& rng);

}  // namespace cpa

#endif  // CPA_SIMULATION_TRUTH_GENERATOR_H_
