#ifndef CPA_SIMULATION_CROWD_SIMULATOR_H_
#define CPA_SIMULATION_CROWD_SIMULATOR_H_

/// \file crowd_simulator.h
/// \brief Generates worker answers for items with known ground truth.
///
/// Models the paper's task design (§5.1): each item is shown to several
/// workers; a worker sees a *candidate label set* (the paper shows ~30
/// candidate tags for images, 20 for reviews) consisting of the true
/// labels, labels that co-occur with them (drawn from the item's cluster
/// profile — the realistic confusions) and random fillers. Non-spammer
/// answers follow the worker's per-label sensitivity/specificity; uniform
/// spammers always answer their fixed label; random spammers answer random
/// candidate subsets. Worker-to-item assignment is uniform or Zipf-skewed
/// ("the distribution of worker answers is skewed in datasets (1) and
/// (5)").

#include <cstddef>
#include <span>

#include "data/answer_matrix.h"
#include "simulation/truth_generator.h"
#include "simulation/worker_profile.h"
#include "util/rng.h"
#include "util/status.h"

namespace cpa {

/// \brief Knobs of the answer simulator.
struct SimulationConfig {
  /// Expected number of answers per item (redundancy). Fractional values
  /// are realised in expectation.
  double answers_per_item = 8.0;

  /// Zipf-skewed worker activity when true; uniform otherwise.
  bool skewed_workers = false;
  double zipf_exponent = 1.1;

  /// Cap on any single worker's load, as a multiple of the mean load
  /// (skewed assignment only). Crowd platforms limit how many tasks one
  /// worker may take; without the cap a handful of Zipf-head workers
  /// supply half of every item's answers and their idiosyncrasies dominate
  /// the whole dataset.
  double max_load_factor = 4.0;

  /// Size of the candidate label set a worker chooses from.
  std::size_t candidate_set_size = 20;

  /// Fraction of non-true candidates drawn from the item's cluster profile
  /// (confusable labels) rather than uniformly.
  double confusable_fraction = 0.7;

  /// Mean answer-set size of random spammers.
  double spam_set_mean = 2.0;

  /// Attention budget of honest workers: the mean of a (1 + Poisson)
  /// per-answer cap on how many labels a worker reports. Workers do not
  /// exhaustively verify every candidate — they stop after a few labels,
  /// which makes answers *partially complete* (a missing label is not a
  /// negative judgement — the phenomenon the paper builds on, §1). 0
  /// disables the cap.
  double attention_mean = 0.0;

  Status Validate() const;
};

/// \brief Simulates the answer matrix for `truth` using `workers`.
///
/// Every item receives at least one answer. Fails on invalid config or an
/// empty worker pool.
Result<AnswerMatrix> SimulateAnswers(const GroundTruth& truth,
                                     std::span<const WorkerProfile> workers,
                                     const SimulationConfig& config, Rng& rng);

/// \brief Builds the candidate label set for one item (exposed for tests):
/// true labels + confusable labels from the cluster profile + uniform
/// fillers, up to `candidate_set_size` distinct labels.
LabelSet BuildCandidateSet(const LabelSet& truth, std::span<const double> profile,
                           const SimulationConfig& config, Rng& rng);

/// \brief Simulates a single answer of `worker` for an item (exposed for
/// tests). Never returns an empty set.
LabelSet SimulateOneAnswer(const WorkerProfile& worker, const LabelSet& truth,
                           const LabelSet& candidates, const SimulationConfig& config,
                           Rng& rng);

}  // namespace cpa

#endif  // CPA_SIMULATION_CROWD_SIMULATOR_H_
