#ifndef CPA_UTIL_JSON_H_
#define CPA_UTIL_JSON_H_

/// \file json.h
/// \brief A minimal JSON document, sufficient to round-trip the repo's
/// machine-readable artefacts (bench reports, engine configs).
///
/// Supports objects, arrays, strings (with `\"`, `\\`, `\/`, `\b`, `\f`,
/// `\n`, `\r`, `\t` escapes), finite numbers, booleans and null — exactly
/// the grammar `Dump` emits. Not a general-purpose JSON library; lives
/// here so reports and configs can be validated without external deps.

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cpa {

/// \brief A parsed (or constructed) JSON value.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : kind_(Kind::kNull) {}
  explicit JsonValue(bool value) : kind_(Kind::kBool), bool_(value) {}
  explicit JsonValue(double value) : kind_(Kind::kNumber), number_(value) {}
  explicit JsonValue(std::string value)
      : kind_(Kind::kString), string_(std::move(value)) {}
  explicit JsonValue(Array value)
      : kind_(Kind::kArray), array_(std::move(value)) {}
  explicit JsonValue(Object value)
      : kind_(Kind::kObject), object_(std::move(value)) {}

  /// Parses `text` as a single JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const Array& array() const { return array_; }
  const Object& object() const { return object_; }

  /// Object lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  /// Serializes with 2-space indentation and sorted object keys.
  std::string Dump() const;

  /// Serializes without any whitespace — one line, for line-delimited
  /// protocols (the server's wire format). Parses back identically.
  std::string DumpCompact() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  Array array_;
  Object object_;
};

}  // namespace cpa

#endif  // CPA_UTIL_JSON_H_
