#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace cpa {
namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

// Serialises whole records so interleaved threads stay readable.
std::mutex& LogMutex() {
  static std::mutex mutex;
  return mutex;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO ";
    case LogLevel::kWarning:
      return "WARN ";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?????";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  stream_ << "[" << LevelTag(level_) << " " << Basename(file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "%s\n", stream_.str().c_str());
}

FatalLogMessage::FatalLogMessage(const char* file, int line, const char* condition) {
  stream_ << "[FATAL " << Basename(file) << ":" << line << "] Check failed: " << condition
          << " ";
}

FatalLogMessage::~FatalLogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  std::abort();
}

}  // namespace internal
}  // namespace cpa
