#ifndef CPA_UTIL_STATUS_H_
#define CPA_UTIL_STATUS_H_

/// \file status.h
/// \brief Status / Result error-handling primitives.
///
/// Fallible operations in libcpa return a `Status` (or a `Result<T>` when a
/// value is produced) instead of throwing. This mirrors the idiom used by
/// production database engines (RocksDB, Arrow): callers must inspect the
/// returned status, and helper macros (`CPA_RETURN_NOT_OK`,
/// `CPA_ASSIGN_OR_RETURN`) keep propagation terse.

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace cpa {

/// \brief Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kUnimplemented,
  kInternal,
  kIOError,
};

/// \brief Returns a stable human-readable name for a status code.
std::string_view StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: a code plus an optional message.
///
/// `Status` is cheap to copy in the OK case (no allocation) and carries a
/// diagnostic message otherwise. It is deliberately not convertible to
/// `bool` implicitly; call `ok()`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// \name Named constructors, one per non-OK code.
  /// @{
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status Unimplemented(std::string message) {
    return Status(StatusCode::kUnimplemented, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status IOError(std::string message) {
    return Status(StatusCode::kIOError, std::move(message));
  }
  /// @}

  /// True iff the operation succeeded.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status category.
  StatusCode code() const { return code_; }

  /// The diagnostic message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// \brief A value-or-status union: holds `T` on success, `Status` otherwise.
///
/// Accessing `value()` on an errored result aborts (programming error), so
/// callers must check `ok()` first or use `CPA_ASSIGN_OR_RETURN`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit to allow `return value;`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}  // NOLINT

  /// Constructs an errored result (implicit to allow `return status;`).
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }

  /// The status (OK when a value is present).
  const Status& status() const { return status_; }

  /// Returns the value; must only be called when `ok()`.
  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the contained value or `fallback` when errored.
  T value_or(T fallback) const {
    return ok() ? value_.value() : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace cpa

/// Propagates a non-OK `Status` from the current function.
#define CPA_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::cpa::Status _cpa_status = (expr);      \
    if (!_cpa_status.ok()) return _cpa_status; \
  } while (false)

#define CPA_CONCAT_IMPL(a, b) a##b
#define CPA_CONCAT(a, b) CPA_CONCAT_IMPL(a, b)

/// Evaluates `rexpr` (a `Result<T>`), propagating its status on error and
/// binding the value to `lhs` on success.
#define CPA_ASSIGN_OR_RETURN(lhs, rexpr)                      \
  auto CPA_CONCAT(_cpa_result_, __LINE__) = (rexpr);          \
  if (!CPA_CONCAT(_cpa_result_, __LINE__).ok())               \
    return CPA_CONCAT(_cpa_result_, __LINE__).status();       \
  lhs = std::move(CPA_CONCAT(_cpa_result_, __LINE__)).value()

#endif  // CPA_UTIL_STATUS_H_
