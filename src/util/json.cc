#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace cpa {
namespace {

/// Recursive-descent parser over the supported grammar. `pos` always points
/// at the next unconsumed character.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    CPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument(Error("trailing characters"));
    }
    return value;
  }

 private:
  Result<JsonValue> ParseValue() {
    SkipWhitespace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument(Error("unexpected end of input"));
    }
    switch (text_[pos_]) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return ParseString();
      case 't': return ParseLiteral("true", JsonValue(true));
      case 'f': return ParseLiteral("false", JsonValue(false));
      case 'n': return ParseLiteral("null", JsonValue());
      default: return ParseNumber();
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // consume '{'
    JsonValue::Object object;
    SkipWhitespace();
    if (Peek() == '}') {
      ++pos_;
      return JsonValue(std::move(object));
    }
    while (true) {
      SkipWhitespace();
      if (Peek() != '"') {
        return Status::InvalidArgument(Error("expected object key"));
      }
      CPA_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipWhitespace();
      if (Peek() != ':') {
        return Status::InvalidArgument(Error("expected ':' after object key"));
      }
      ++pos_;
      CPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      object[key.string_value()] = std::move(value);
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == '}') {
        ++pos_;
        return JsonValue(std::move(object));
      }
      return Status::InvalidArgument(Error("expected ',' or '}' in object"));
    }
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // consume '['
    JsonValue::Array array;
    SkipWhitespace();
    if (Peek() == ']') {
      ++pos_;
      return JsonValue(std::move(array));
    }
    while (true) {
      CPA_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
      array.push_back(std::move(value));
      SkipWhitespace();
      if (Peek() == ',') {
        ++pos_;
        continue;
      }
      if (Peek() == ']') {
        ++pos_;
        return JsonValue(std::move(array));
      }
      return Status::InvalidArgument(Error("expected ',' or ']' in array"));
    }
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // consume '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return JsonValue(std::move(out));
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        char escape = text_[pos_++];
        switch (escape) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          default:
            return Status::InvalidArgument(Error("unsupported string escape"));
        }
      } else {
        out.push_back(c);
      }
    }
    return Status::InvalidArgument(Error("unterminated string"));
  }

  Result<JsonValue> ParseNumber() {
    const std::size_t start = pos_;
    if (Peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (token.empty() || end != token.c_str() + token.size() ||
        !std::isfinite(value)) {
      return Status::InvalidArgument(Error("malformed number"));
    }
    return JsonValue(value);
  }

  Result<JsonValue> ParseLiteral(std::string_view literal, JsonValue value) {
    if (text_.substr(pos_, literal.size()) != literal) {
      return Status::InvalidArgument(Error("malformed literal"));
    }
    pos_ += literal.size();
    return value;
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// The next unconsumed character, or '\0' at end of input.
  char Peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  std::string Error(std::string_view what) const {
    std::ostringstream os;
    os << "JSON parse error at offset " << pos_ << ": " << what;
    return os.str();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

void EscapeStringTo(std::ostream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default: os << c;
    }
  }
  os << '"';
}

/// One serializer for both renderings: `pretty` adds the 2-space
/// indentation and per-entry newlines of `Dump`; compact mode emits the
/// same tokens with no whitespace at all (`DumpCompact`).
void DumpTo(std::ostream& os, const JsonValue& value, int indent, bool pretty) {
  switch (value.kind()) {
    case JsonValue::Kind::kNull:
      os << "null";
      break;
    case JsonValue::Kind::kBool:
      os << (value.bool_value() ? "true" : "false");
      break;
    case JsonValue::Kind::kNumber: {
      // JSON has no NaN/Inf; emit null so the file stays parseable (the
      // parser rejects non-finite numbers, keeping round-trips symmetric).
      if (!std::isfinite(value.number_value())) {
        os << "null";
        break;
      }
      // max_digits10 keeps doubles exact across a serialize/parse cycle.
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%.17g", value.number_value());
      os << buffer;
      break;
    }
    case JsonValue::Kind::kString:
      EscapeStringTo(os, value.string_value());
      break;
    case JsonValue::Kind::kArray: {
      if (value.array().empty()) {
        os << "[]";
        break;
      }
      os << '[';
      for (std::size_t i = 0; i < value.array().size(); ++i) {
        if (i > 0) os << ',';
        if (pretty) os << '\n' << std::string(2 * (indent + 1), ' ');
        DumpTo(os, value.array()[i], indent + 1, pretty);
      }
      if (pretty) os << '\n' << std::string(2 * indent, ' ');
      os << ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      if (value.object().empty()) {
        os << "{}";
        break;
      }
      os << '{';
      std::size_t i = 0;
      for (const auto& [key, child] : value.object()) {
        if (i++ > 0) os << ',';
        if (pretty) os << '\n' << std::string(2 * (indent + 1), ' ');
        EscapeStringTo(os, key);
        os << (pretty ? ": " : ":");
        DumpTo(os, child, indent + 1, pretty);
      }
      if (pretty) os << '\n' << std::string(2 * indent, ' ');
      os << '}';
      break;
    }
  }
}

}  // namespace

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).ParseDocument();
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump() const {
  std::ostringstream os;
  DumpTo(os, *this, 0, /*pretty=*/true);
  return os.str();
}

std::string JsonValue::DumpCompact() const {
  std::ostringstream os;
  DumpTo(os, *this, 0, /*pretty=*/false);
  return os.str();
}

}  // namespace cpa
