#ifndef CPA_UTIL_ENDIAN_H_
#define CPA_UTIL_ENDIAN_H_

/// \file endian.h
/// \brief Little-endian scalar (de)serialization for wire formats.
///
/// The server's frame and binary-codec layers (src/server/) fix their wire
/// byte order to little-endian — the native order of every deployment
/// target we build for — and go through these helpers so the encoding is
/// explicit, alignment-safe (bytewise, no type-punned loads) and portable
/// to a big-endian host if one ever appears.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace cpa {

/// Appends `value` to `out` as `N` little-endian bytes.
template <typename T>
inline void AppendLittleEndian(std::string& out, T value) {
  static_assert(std::is_unsigned_v<T>, "encode unsigned representations");
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    out.push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

/// Reads an unsigned little-endian scalar from `bytes` at `offset`.
/// Callers bounds-check before calling (`offset + sizeof(T) <= size`).
template <typename T>
inline T ReadLittleEndian(std::string_view bytes, std::size_t offset) {
  static_assert(std::is_unsigned_v<T>, "decode unsigned representations");
  T value = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    value |= static_cast<T>(static_cast<unsigned char>(bytes[offset + i]))
             << (8 * i);
  }
  return value;
}

/// Appends a double as its IEEE-754 bit pattern (little-endian).
inline void AppendLittleEndianDouble(std::string& out, double value) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  AppendLittleEndian<std::uint64_t>(out, bits);
}

/// Reads a double back from its IEEE-754 bit pattern.
inline double ReadLittleEndianDouble(std::string_view bytes, std::size_t offset) {
  const std::uint64_t bits = ReadLittleEndian<std::uint64_t>(bytes, offset);
  double value = 0.0;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

}  // namespace cpa

#endif  // CPA_UTIL_ENDIAN_H_
