#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace cpa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  CPA_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CPA_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void SubmitAndWait(Executor* executor, std::size_t count,
                   const std::function<void(std::size_t)>& task) {
  if (count == 0) return;
  if (executor == nullptr || count == 1) {
    for (std::size_t i = 0; i < count; ++i) task(i);
    return;
  }
  // Per-call latch: tracks only the tasks submitted here, so a shared
  // executor can carry other sessions' work concurrently. The final
  // decrement and its notify run under the lock — the waiter can only
  // observe `remaining == 0` (and destroy the latch) after the notifying
  // task has released it.
  std::mutex mutex;
  std::condition_variable done;
  std::size_t remaining = count;
  for (std::size_t i = 0; i < count; ++i) {
    executor->Submit([&, i] {
      task(i);
      std::unique_lock<std::mutex> lock(mutex);
      if (--remaining == 0) done.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done.wait(lock, [&] { return remaining == 0; });
}

void ParallelFor(Executor* executor, std::size_t total,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_shard) {
  if (total == 0) return;
  if (executor == nullptr || executor->num_threads() <= 1 || total < min_shard * 2) {
    body(0, total);
    return;
  }
  const std::size_t shards =
      std::min(executor->num_threads(), std::max<std::size_t>(1, total / min_shard));
  const std::size_t chunk = (total + shards - 1) / shards;
  const std::size_t count = (total + chunk - 1) / chunk;  // non-empty shards
  SubmitAndWait(executor, count, [&body, chunk, total](std::size_t s) {
    const std::size_t begin = s * chunk;
    body(begin, std::min(total, begin + chunk));
  });
}

}  // namespace cpa
