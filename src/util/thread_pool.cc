#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace cpa {

ThreadPool::ThreadPool(std::size_t num_threads) {
  CPA_CHECK_GE(num_threads, 1u);
  threads_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CPA_CHECK(!shutting_down_) << "Submit after shutdown";
    queue_.push(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) idle_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, std::size_t total,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_shard) {
  if (total == 0) return;
  if (pool == nullptr || pool->num_threads() <= 1 || total < min_shard * 2) {
    body(0, total);
    return;
  }
  const std::size_t shards =
      std::min(pool->num_threads(), std::max<std::size_t>(1, total / min_shard));
  const std::size_t chunk = (total + shards - 1) / shards;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t begin = s * chunk;
    const std::size_t end = std::min(total, begin + chunk);
    if (begin >= end) break;
    pool->Submit([&body, begin, end] { body(begin, end); });
  }
  pool->Wait();
}

}  // namespace cpa
