#ifndef CPA_UTIL_STRING_UTILS_H_
#define CPA_UTIL_STRING_UTILS_H_

/// \file string_utils.h
/// \brief Small string helpers shared by IO, flags and table printing.

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace cpa {

/// Splits `text` on `delimiter`, keeping empty fields.
std::vector<std::string> Split(std::string_view text, char delimiter);

/// Joins `parts` with `separator`.
std::string Join(const std::vector<std::string>& parts, std::string_view separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// Parses a base-10 signed integer; the whole string must be consumed.
Result<long long> ParseInt(std::string_view text);

/// Parses a double; the whole string must be consumed.
Result<double> ParseDouble(std::string_view text);

/// True if `text` begins with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

/// Standard base64 (RFC 4648, `+/` alphabet, `=` padding). Used to carry
/// binary checkpoint blobs inside JSON wire responses.
std::string Base64Encode(std::string_view bytes);

/// Strict decoder: rejects non-alphabet characters, bad padding and
/// trailing garbage (whitespace included).
Result<std::string> Base64Decode(std::string_view text);

}  // namespace cpa

#endif  // CPA_UTIL_STRING_UTILS_H_
