#include "util/table_printer.h"

#include <algorithm>
#include <iostream>

#include "util/string_utils.h"

namespace cpa {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddRow(const std::string& label, const std::vector<double>& values,
                          int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(label);
  for (double v : values) {
    cells.push_back(StrFormat("%.*f", precision, v));
  }
  AddRow(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t rule_width = 0;
  for (std::size_t w : widths) rule_width += w + 2;
  os << std::string(rule_width, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::Print() const { Print(std::cout); }

}  // namespace cpa
