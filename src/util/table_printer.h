#ifndef CPA_UTIL_TABLE_PRINTER_H_
#define CPA_UTIL_TABLE_PRINTER_H_

/// \file table_printer.h
/// \brief Aligned console tables, used by the bench harness to print the
/// paper's tables and figure series.

#include <iosfwd>
#include <string>
#include <vector>

namespace cpa {

/// \brief Collects rows of string cells and renders them column-aligned.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with `precision` decimals.
  void AddRow(const std::string& label, const std::vector<double>& values,
              int precision = 3);

  /// Renders the full table (headers, rule, rows) to `os`.
  void Print(std::ostream& os) const;

  /// Renders to stdout.
  void Print() const;

  /// Number of data rows added so far.
  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cpa

#endif  // CPA_UTIL_TABLE_PRINTER_H_
