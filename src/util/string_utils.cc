#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cpa {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<long long> ParseInt(std::string_view text) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) return Status::InvalidArgument("empty integer literal");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("trailing characters in integer literal: " + buffer);
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) return Status::InvalidArgument("empty double literal");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("trailing characters in double literal: " + buffer);
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

namespace {

constexpr char kBase64Alphabet[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Maps a base64 character to its 6-bit value, or -1 if not in the alphabet.
int Base64Value(char c) {
  if (c >= 'A' && c <= 'Z') return c - 'A';
  if (c >= 'a' && c <= 'z') return c - 'a' + 26;
  if (c >= '0' && c <= '9') return c - '0' + 52;
  if (c == '+') return 62;
  if (c == '/') return 63;
  return -1;
}

}  // namespace

std::string Base64Encode(std::string_view bytes) {
  std::string out;
  out.reserve((bytes.size() + 2) / 3 * 4);
  std::size_t i = 0;
  for (; i + 3 <= bytes.size(); i += 3) {
    const unsigned a = static_cast<unsigned char>(bytes[i]);
    const unsigned b = static_cast<unsigned char>(bytes[i + 1]);
    const unsigned c = static_cast<unsigned char>(bytes[i + 2]);
    out.push_back(kBase64Alphabet[a >> 2]);
    out.push_back(kBase64Alphabet[((a & 0x3) << 4) | (b >> 4)]);
    out.push_back(kBase64Alphabet[((b & 0xF) << 2) | (c >> 6)]);
    out.push_back(kBase64Alphabet[c & 0x3F]);
  }
  const std::size_t rest = bytes.size() - i;
  if (rest == 1) {
    const unsigned a = static_cast<unsigned char>(bytes[i]);
    out.push_back(kBase64Alphabet[a >> 2]);
    out.push_back(kBase64Alphabet[(a & 0x3) << 4]);
    out += "==";
  } else if (rest == 2) {
    const unsigned a = static_cast<unsigned char>(bytes[i]);
    const unsigned b = static_cast<unsigned char>(bytes[i + 1]);
    out.push_back(kBase64Alphabet[a >> 2]);
    out.push_back(kBase64Alphabet[((a & 0x3) << 4) | (b >> 4)]);
    out.push_back(kBase64Alphabet[(b & 0xF) << 2]);
    out.push_back('=');
  }
  return out;
}

Result<std::string> Base64Decode(std::string_view text) {
  if (text.size() % 4 != 0) {
    return Status::InvalidArgument("base64 length is not a multiple of 4");
  }
  std::string out;
  out.reserve(text.size() / 4 * 3);
  for (std::size_t i = 0; i < text.size(); i += 4) {
    const bool last = i + 4 == text.size();
    int pad = 0;
    int v[4] = {0, 0, 0, 0};
    for (int k = 0; k < 4; ++k) {
      const char c = text[i + static_cast<std::size_t>(k)];
      if (c == '=') {
        // '=' is only legal as the final one or two characters.
        if (!last || k < 2) {
          return Status::InvalidArgument("base64 padding inside payload");
        }
        ++pad;
        continue;
      }
      if (pad > 0) {
        return Status::InvalidArgument("base64 character after padding");
      }
      v[k] = Base64Value(c);
      if (v[k] < 0) {
        return Status::InvalidArgument("invalid base64 character");
      }
    }
    // A quantum with one padding char must end on a 4-bit boundary, two on
    // a 2-bit boundary — reject encodings with dangling nonzero bits.
    if (pad == 1 && (v[2] & 0x3) != 0) {
      return Status::InvalidArgument("base64 has dangling bits");
    }
    if (pad == 2 && (v[1] & 0xF) != 0) {
      return Status::InvalidArgument("base64 has dangling bits");
    }
    out.push_back(static_cast<char>((v[0] << 2) | (v[1] >> 4)));
    if (pad < 2) out.push_back(static_cast<char>(((v[1] & 0xF) << 4) | (v[2] >> 2)));
    if (pad < 1) out.push_back(static_cast<char>(((v[2] & 0x3) << 6) | v[3]));
  }
  return out;
}

}  // namespace cpa
