#include "util/string_utils.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace cpa {

std::vector<std::string> Split(std::string_view text, char delimiter) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == delimiter) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += separator;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

Result<long long> ParseInt(std::string_view text) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) return Status::InvalidArgument("empty integer literal");
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno == ERANGE) {
    return Status::OutOfRange("integer literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("trailing characters in integer literal: " + buffer);
  }
  return value;
}

Result<double> ParseDouble(std::string_view text) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) return Status::InvalidArgument("empty double literal");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double literal out of range: " + buffer);
  }
  if (end != buffer.c_str() + buffer.size()) {
    return Status::InvalidArgument("trailing characters in double literal: " + buffer);
  }
  return value;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace cpa
