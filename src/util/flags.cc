#include "util/flags.h"

#include "util/string_utils.h"

namespace cpa {

Result<Flags> Flags::Parse(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!StartsWith(arg, "--")) {
      return Status::InvalidArgument("unexpected positional argument: " +
                                     std::string(arg));
    }
    arg.remove_prefix(2);
    const std::size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
      continue;
    }
    // `--name value` form, or a bare boolean `--name`.
    if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      flags.values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(arg)] = "true";
    }
  }
  return flags;
}

std::string Flags::GetString(std::string_view name, std::string_view fallback) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : std::string(fallback);
}

long long Flags::GetInt(std::string_view name, long long fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto parsed = ParseInt(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

double Flags::GetDouble(std::string_view name, double fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  const auto parsed = ParseDouble(it->second);
  return parsed.ok() ? parsed.value() : fallback;
}

bool Flags::GetBool(std::string_view name, bool fallback) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

bool Flags::Has(std::string_view name) const { return values_.count(name) > 0; }

}  // namespace cpa
