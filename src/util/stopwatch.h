#ifndef CPA_UTIL_STOPWATCH_H_
#define CPA_UTIL_STOPWATCH_H_

/// \file stopwatch.h
/// \brief Wall-clock timing for the runtime experiments (Fig 7).

#include <chrono>

namespace cpa {

/// \brief Monotonic wall-clock stopwatch; starts on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the measurement window.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace cpa

#endif  // CPA_UTIL_STOPWATCH_H_
