#ifndef CPA_UTIL_LOGGING_H_
#define CPA_UTIL_LOGGING_H_

/// \file logging.h
/// \brief Minimal leveled logging and invariant-check macros.
///
/// Logging is synchronous and writes to stderr. Checks (`CPA_CHECK*`) guard
/// programming errors — they abort with a source location, and stay active
/// in release builds because the cost is negligible next to inference work.

#include <cstdint>
#include <sstream>
#include <string>

namespace cpa {

/// \brief Severity of a log record.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
};

/// \brief Process-wide minimum level; records below it are dropped.
void SetLogLevel(LogLevel level);

/// \brief Returns the current process-wide minimum level.
LogLevel GetLogLevel();

namespace internal {

/// \brief Stream-style collector that emits one record on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// \brief Collector that aborts the process after emitting the record.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line, const char* condition);
  [[noreturn]] ~FatalLogMessage();

  template <typename T>
  FatalLogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace cpa

#define CPA_LOG(level)                                                  \
  if (static_cast<int>(::cpa::LogLevel::level) <                        \
      static_cast<int>(::cpa::GetLogLevel())) {                         \
  } else                                                                \
    ::cpa::internal::LogMessage(::cpa::LogLevel::level, __FILE__, __LINE__)

/// Aborts with a message when `condition` is false.
#define CPA_CHECK(condition)                                           \
  if (condition) {                                                     \
  } else                                                               \
    ::cpa::internal::FatalLogMessage(__FILE__, __LINE__, #condition)

#define CPA_CHECK_EQ(a, b) CPA_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPA_CHECK_NE(a, b) CPA_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPA_CHECK_LT(a, b) CPA_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPA_CHECK_LE(a, b) CPA_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPA_CHECK_GT(a, b) CPA_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define CPA_CHECK_GE(a, b) CPA_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

/// Aborts when a `Status`-returning expression fails. For use in tests,
/// examples and benches where the error is unrecoverable anyway.
#define CPA_CHECK_OK(expr)                        \
  do {                                            \
    ::cpa::Status _cpa_check_status = (expr);     \
    CPA_CHECK(_cpa_check_status.ok()) << _cpa_check_status.ToString(); \
  } while (false)

#endif  // CPA_UTIL_LOGGING_H_
