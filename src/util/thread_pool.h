#ifndef CPA_UTIL_THREAD_POOL_H_
#define CPA_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief Task executors: the `Executor` injection point, the fixed-size
/// `ThreadPool`, and data-parallel loop helpers.
///
/// Algorithm 3 of the paper parallelises stochastic variational inference in
/// MapReduce style: the per-worker local updates are independent (MAP) and
/// the global natural-gradient step is centralised (REDUCE). On a single
/// machine this maps onto worker threads plus a blocking `ParallelFor` over
/// index ranges; the REDUCE step runs on the calling thread after the
/// barrier.
///
/// Everything downstream of the sweep layer is programmed against the
/// abstract `Executor`, not the concrete pool: a session may own a
/// `ThreadPool` outright (the single-session default), or — under the
/// multi-session server — hold a `ServerScheduler` lane that multiplexes
/// many sessions onto one shared pool (src/server/server_scheduler.h).
/// `SubmitAndWait` / `ParallelFor` therefore wait on a per-call completion
/// latch, never on executor-wide idleness: on a shared executor, waiting
/// for "everything" would wait on other sessions' work too.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cpa {

/// \brief Where parallel work runs: the injection point of every parallel
/// code path in libcpa.
///
/// Implementations execute submitted tasks on some set of worker threads.
/// Tasks must be independent of each other — a task that blocks waiting for
/// another *submitted* task can deadlock a fully loaded executor. (Blocking
/// on a per-call latch from a non-worker thread, as `SubmitAndWait` does,
/// is fine.)
class Executor {
 public:
  virtual ~Executor() = default;

  /// Enqueues a task for execution on some worker thread.
  virtual void Submit(std::function<void()> task) = 0;

  /// Worker-thread count backing this executor — the sharding hint used by
  /// `ParallelFor` (never a determinism input; see sweep_scheduler.h).
  virtual std::size_t num_threads() const = 0;
};

/// \brief Fixed-size pool of worker threads executing queued tasks.
class ThreadPool final : public Executor {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool() override;

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task) override;

  /// Blocks until every submitted task has finished. Pool-wide: only
  /// meaningful for a caller that owns the pool outright — code running on
  /// a shared executor must use `SubmitAndWait` instead.
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const override { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// \brief Runs `task(0) .. task(count-1)` on `executor` and blocks until
/// exactly those calls finish (a per-call latch — safe when the executor is
/// shared with other sessions, unlike `ThreadPool::Wait`).
///
/// With `executor == nullptr` the tasks run inline on the calling thread.
/// Must not be called from one of the executor's own worker threads: the
/// caller blocks while holding a worker slot, which deadlocks once every
/// worker does it.
void SubmitAndWait(Executor* executor, std::size_t count,
                   const std::function<void(std::size_t)>& task);

/// \brief Runs `body(begin, end)` over [0, total) split into contiguous
/// shards, one per executor thread, and blocks until all shards finish.
///
/// With `executor == nullptr` or `total` below `min_shard`, runs inline on
/// the calling thread (the sequential fallback keeps call sites
/// branch-free).
void ParallelFor(Executor* executor, std::size_t total,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_shard = 1);

}  // namespace cpa

#endif  // CPA_UTIL_THREAD_POOL_H_
