#ifndef CPA_UTIL_THREAD_POOL_H_
#define CPA_UTIL_THREAD_POOL_H_

/// \file thread_pool.h
/// \brief Fixed-size worker pool and data-parallel loop helper.
///
/// Algorithm 3 of the paper parallelises stochastic variational inference in
/// MapReduce style: the per-worker local updates are independent (MAP) and
/// the global natural-gradient step is centralised (REDUCE). On a single
/// machine this maps onto a thread pool plus a blocking `ParallelFor` over
/// index ranges; the REDUCE step runs on the calling thread after the
/// barrier.

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace cpa {

/// \brief Fixed-size pool of worker threads executing queued tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1).
  explicit ThreadPool(std::size_t num_threads);

  /// Drains outstanding work and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void Wait();

  /// Number of worker threads.
  std::size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// \brief Runs `body(begin, end)` over [0, total) split into contiguous
/// shards, one per pool thread, and blocks until all shards finish.
///
/// With `pool == nullptr` or `total` below `min_shard`, runs inline on the
/// calling thread (the sequential fallback keeps call sites branch-free).
void ParallelFor(ThreadPool* pool, std::size_t total,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 std::size_t min_shard = 1);

}  // namespace cpa

#endif  // CPA_UTIL_THREAD_POOL_H_
