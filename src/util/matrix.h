#ifndef CPA_UTIL_MATRIX_H_
#define CPA_UTIL_MATRIX_H_

/// \file matrix.h
/// \brief Dense row-major matrix and small vector kernels.
///
/// The inference code manipulates responsibility matrices (workers ×
/// communities, items × clusters) and banks of Dirichlet parameter vectors.
/// A thin owning matrix with `std::span` row views is all that is needed —
/// the hot loops are digamma/exp transforms, not BLAS-style products.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

#include "util/logging.h"

namespace cpa {

/// \brief Owning dense row-major matrix of doubles.
class Matrix {
 public:
  /// Empty 0x0 matrix.
  Matrix() : rows_(0), cols_(0) {}

  /// rows x cols matrix with every entry set to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from a nested initializer list (for tests/examples).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    CPA_CHECK_LT(r, rows_);
    CPA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    CPA_CHECK_LT(r, rows_);
    CPA_CHECK_LT(c, cols_);
    return data_[r * cols_ + c];
  }

  /// Mutable view of row `r`.
  std::span<double> Row(std::size_t r) {
    CPA_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }
  /// Read-only view of row `r`.
  std::span<const double> Row(std::size_t r) const {
    CPA_CHECK_LT(r, rows_);
    return {data_.data() + r * cols_, cols_};
  }

  /// Raw storage (row-major).
  std::span<double> Data() { return data_; }
  std::span<const double> Data() const { return data_; }

  /// Sets every entry to `value`.
  void Fill(double value);

  /// Resizes to rows x cols, setting all entries to `fill`.
  void Reset(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Sum over a column / over a row.
  double RowSum(std::size_t r) const;
  double ColSum(std::size_t c) const;

  /// Normalises every row to sum to one (rows summing to <= 0 become
  /// uniform).
  void NormalizeRows();

  /// Largest absolute entry-wise difference against `other` (same shape).
  double MaxAbsDiff(const Matrix& other) const;

  /// Index of the largest entry in row `r`.
  std::size_t ArgMaxRow(std::size_t r) const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<double> data_;
};

/// \name Vector kernels (operate on spans so they compose with Matrix rows).
///
/// `Sum`, `Dot` and `Axpy` are defined in the dispatched-kernel TU
/// (core/sweep/sweep_kernels_avx2.cc) and run the runtime-selected scalar
/// or AVX2 variant; both are lane-ordered so results are bit-identical
/// (see core/sweep/simd.h).
/// @{

/// Sum of entries.
double Sum(std::span<const double> v);

/// Scales `v` so it sums to one; if the sum is <= 0 the vector becomes
/// uniform. Returns the original sum.
double NormalizeInPlace(std::span<double> v);

/// Dot product (sizes must match).
double Dot(std::span<const double> a, std::span<const double> b);

/// Cosine similarity; 0 when either vector is all-zero.
double CosineSimilarity(std::span<const double> a, std::span<const double> b);

/// out[i] += scale * in[i].
void Axpy(double scale, std::span<const double> in, std::span<double> out);

/// Largest absolute element-wise difference.
double MaxAbsDiff(std::span<const double> a, std::span<const double> b);

/// @}

}  // namespace cpa

#endif  // CPA_UTIL_MATRIX_H_
