#include "util/matrix.h"

#include <algorithm>
#include <cmath>

namespace cpa {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() > 0 ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    CPA_CHECK_EQ(row.size(), cols_) << "ragged initializer";
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

void Matrix::Fill(double value) { std::fill(data_.begin(), data_.end(), value); }

void Matrix::Reset(std::size_t rows, std::size_t cols, double fill) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, fill);
}

double Matrix::RowSum(std::size_t r) const { return Sum(Row(r)); }

double Matrix::ColSum(std::size_t c) const {
  CPA_CHECK_LT(c, cols_);
  double total = 0.0;
  for (std::size_t r = 0; r < rows_; ++r) total += data_[r * cols_ + c];
  return total;
}

void Matrix::NormalizeRows() {
  for (std::size_t r = 0; r < rows_; ++r) NormalizeInPlace(Row(r));
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  CPA_CHECK_EQ(rows_, other.rows_);
  CPA_CHECK_EQ(cols_, other.cols_);
  return cpa::MaxAbsDiff(Data(), other.Data());
}

std::size_t Matrix::ArgMaxRow(std::size_t r) const {
  const auto row = Row(r);
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

// Sum, Dot and Axpy are defined in core/sweep/sweep_kernels_avx2.cc — the
// dispatched-kernel TU — so the span primitives run the runtime-selected
// scalar/AVX2 variant everywhere.

double NormalizeInPlace(std::span<double> v) {
  const double total = Sum(v);
  if (total <= 0.0) {
    if (!v.empty()) {
      const double uniform = 1.0 / static_cast<double>(v.size());
      std::fill(v.begin(), v.end(), uniform);
    }
    return total;
  }
  for (double& x : v) x /= total;
  return total;
}

double CosineSimilarity(std::span<const double> a, std::span<const double> b) {
  const double dot = Dot(a, b);
  const double na = std::sqrt(Dot(a, a));
  const double nb = std::sqrt(Dot(b, b));
  if (na <= 0.0 || nb <= 0.0) return 0.0;
  return dot / (na * nb);
}

double MaxAbsDiff(std::span<const double> a, std::span<const double> b) {
  CPA_CHECK_EQ(a.size(), b.size());
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    max_diff = std::max(max_diff, std::abs(a[i] - b[i]));
  }
  return max_diff;
}

}  // namespace cpa
