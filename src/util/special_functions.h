#ifndef CPA_UTIL_SPECIAL_FUNCTIONS_H_
#define CPA_UTIL_SPECIAL_FUNCTIONS_H_

/// \file special_functions.h
/// \brief Scalar special functions used throughout variational inference.
///
/// Variational updates for Dirichlet/Beta factors need the digamma function
/// (`Ψ`), log-Beta / log-multivariate-Beta normalisers, entropies, and
/// numerically stable log-sum-exp reductions. All functions here are pure
/// and thread-safe.

#include <cstddef>
#include <span>
#include <vector>

namespace cpa {

/// \brief Digamma function Ψ(x) = d/dx ln Γ(x) for x > 0.
///
/// Uses the ascending recurrence Ψ(x) = Ψ(x+1) − 1/x to reach x ≥ 6 and then
/// the standard asymptotic series; absolute error < 1e-12 over (0, ∞).
double Digamma(double x);

/// \brief Trigamma function Ψ'(x) for x > 0 (used in tests and diagnostics).
double Trigamma(double x);

/// \brief ln Γ(x); thin wrapper over std::lgamma with domain checks.
double LogGamma(double x);

/// \brief ln B(a, b) = ln Γ(a) + ln Γ(b) − ln Γ(a+b).
double LogBeta(double a, double b);

/// \brief Log of the multivariate Beta normaliser of a Dirichlet:
/// ln B(α) = Σ ln Γ(α_c) − ln Γ(Σ α_c).
double LogMultivariateBeta(std::span<const double> alpha);

/// \brief Numerically stable ln Σ exp(v_i). Returns −inf for empty input.
///
/// Defined in the dispatched-kernel TU (core/sweep/sweep_kernels_avx2.cc):
/// the reduction runs the runtime-selected scalar or AVX2 variant, both
/// lane-ordered so results are identical (see core/sweep/simd.h).
double LogSumExp(std::span<const double> values);

/// \brief In-place transform of log-weights into a normalised probability
/// vector via softmax; returns the log-normaliser. No-op on empty input.
/// Dispatched like `LogSumExp` (see core/sweep/simd.h).
double SoftmaxInPlace(std::span<double> log_weights);

/// \brief Softmax with an underflow floor: entries more than `floor_nats`
/// below the row maximum become exactly 0 instead of being exponentiated.
///
/// Responsibility rows over wide truncations (T up to ~1000) concentrate on
/// a handful of components; with `floor_nats` = 27.6 the dropped entries
/// carry < 1e-12 of the mass — below what the sweep kernels' skip threshold
/// would read anyway — and the row costs |active| exp calls instead of T.
/// Deterministic (a pure function of the input row), so thread-count
/// invariance of the sweeps is unaffected.
double SoftmaxInPlace(std::span<double> log_weights, double floor_nats);

/// \brief Entropy of a Dirichlet(α) distribution.
double DirichletEntropy(std::span<const double> alpha);

/// \brief E[ln θ_c] under Dirichlet(α): Ψ(α_c) − Ψ(Σ α).
/// Writes into `out`, which must have the same size as `alpha`.
void DirichletExpectedLog(std::span<const double> alpha, std::span<double> out);

/// \brief Entropy of a Beta(a, b) distribution.
double BetaEntropy(double a, double b);

/// \brief KL(Dir(α) || Dir(β)) between Dirichlets of equal dimension.
double DirichletKL(std::span<const double> alpha, std::span<const double> beta);

}  // namespace cpa

#endif  // CPA_UTIL_SPECIAL_FUNCTIONS_H_
