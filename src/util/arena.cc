#include "util/arena.h"

#include <algorithm>

namespace cpa {
namespace {

std::size_t AlignUp(std::size_t value, std::size_t align) {
  return (value + align - 1) & ~(align - 1);
}

}  // namespace

void* ScratchArena::AllocBytes(std::size_t bytes) {
  ++stats_.checkouts;
  bytes = std::max<std::size_t>(bytes, 1);
  const std::size_t padded = AlignUp(bytes, kAlign);
  stats_.bytes_in_use += padded;
  stats_.peak_bytes_in_use = std::max(stats_.peak_bytes_in_use, stats_.bytes_in_use);

  if (mode_ == Mode::kHeap) {
    // Baseline mode: the pre-arena behaviour, one heap allocation per
    // checkout, freed again when the frame closes.
    heap_blocks_.push_back(std::make_unique<std::byte[]>(padded));
    ++stats_.slab_allocations;
    stats_.bytes_reserved += padded;
    return heap_blocks_.back().get();
  }

  // Bump within the current slab, advancing through retained slabs before
  // growing. Slab starts are max_align_t-aligned (operator new[]), and
  // every checkout size is padded to kAlign, so offsets stay aligned.
  while (current_ < slabs_.size()) {
    Slab& slab = slabs_[current_];
    if (slab.used + padded <= slab.size) {
      void* out = slab.data.get() + slab.used;
      slab.used += padded;
      return out;
    }
    if (++current_ < slabs_.size()) slabs_[current_].used = 0;
  }
  const std::size_t slab_bytes = std::max(padded, next_slab_bytes_);
  next_slab_bytes_ = std::min(kMaxSlabBytes, next_slab_bytes_ * 2);
  slabs_.push_back(Slab{std::make_unique<std::byte[]>(slab_bytes), slab_bytes, padded});
  current_ = slabs_.size() - 1;
  ++stats_.slab_allocations;
  stats_.bytes_reserved += slab_bytes;
  return slabs_.back().data.get();
}

void ScratchArena::Rewind(std::size_t slab_index, std::size_t slab_used,
                          std::size_t heap_count, std::size_t bytes_in_use) {
  ++stats_.frames;
  stats_.bytes_in_use = bytes_in_use;
  if (mode_ == Mode::kHeap) {
    // Frame-scoped blocks are freed; in kHeap mode live reservation always
    // equals the live checkout bytes.
    heap_blocks_.resize(heap_count);
    stats_.bytes_reserved = bytes_in_use;
    return;
  }
  if (slabs_.empty()) return;
  for (std::size_t s = slab_index + 1; s < slabs_.size(); ++s) slabs_[s].used = 0;
  slabs_[slab_index].used = slab_used;
  current_ = slab_index;
}

void ScratchArena::Reset() {
  ++stats_.frames;
  stats_.bytes_in_use = 0;
  if (mode_ == Mode::kHeap) {
    heap_blocks_.clear();
    stats_.bytes_reserved = 0;
    return;
  }
  for (Slab& slab : slabs_) slab.used = 0;
  current_ = 0;
}

}  // namespace cpa
