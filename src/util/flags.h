#ifndef CPA_UTIL_FLAGS_H_
#define CPA_UTIL_FLAGS_H_

/// \file flags.h
/// \brief Tiny command-line flag parser for bench and example binaries.
///
/// Flags use `--name=value` or `--name value` syntax. Every bench binary
/// must run with zero flags (sane defaults) so `for b in build/bench/*`
/// works; flags only tweak scale for interactive exploration.

#include <map>
#include <string>
#include <string_view>

#include "util/status.h"

namespace cpa {

/// \brief Parsed command-line flags with typed accessors.
class Flags {
 public:
  /// Parses argv. Unknown positional arguments produce an error status.
  static Result<Flags> Parse(int argc, char** argv);

  /// Returns the flag value or `fallback` when absent.
  std::string GetString(std::string_view name, std::string_view fallback) const;
  long long GetInt(std::string_view name, long long fallback) const;
  double GetDouble(std::string_view name, double fallback) const;
  bool GetBool(std::string_view name, bool fallback) const;

  /// True if the flag was supplied.
  bool Has(std::string_view name) const;

 private:
  std::map<std::string, std::string, std::less<>> values_;
};

}  // namespace cpa

#endif  // CPA_UTIL_FLAGS_H_
