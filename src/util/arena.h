#ifndef CPA_UTIL_ARENA_H_
#define CPA_UTIL_ARENA_H_

/// \file arena.h
/// \brief Bump/slab scratch arena for the per-sweep transients of the
/// inference hot path.
///
/// The sweep layer checks the same shapes of scratch out on every call —
/// per-block partial accumulators in `SweepScheduler::ParallelReduce`
/// (up to the λ banks, megabytes each) and per-item buffers in the
/// prediction MAP phase. Heap-allocating them afresh per call makes the
/// allocator the scaling bottleneck on long fits; a `ScratchArena` turns
/// the pattern into one warm-up allocation followed by pointer bumps.
///
/// Checkout model:
/// - `Alloc<T>` / `AllocZeroed<T>` hand out typed `std::span<T>` checkout
///   handles carved from the current slab (trivially-destructible T only —
///   nothing is ever destroyed, just rewound).
/// - A `Frame` scopes a group of checkouts: constructing it records the
///   bump state, destroying it rewinds to that state. Slabs are retained
///   across frames, so a steady-state caller allocates nothing.
/// - `Mode::kHeap` turns every checkout into a fresh heap allocation that
///   the frame frees again — the faithful "what the code did before"
///   baseline for the arena-vs-heap microbenchmarks and bit-identity tests.
///
/// Not thread-safe: one arena is owned by one lane (see
/// `SweepScheduler::lane_arena`), and checkout happens either on the
/// calling thread (REDUCE partials) or inside the single shard that owns
/// the lane (MAP scratch).

#include <cstddef>
#include <cstring>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace cpa {

/// \brief Reusable bump allocator with typed checkout handles and stats.
class ScratchArena {
 public:
  enum class Mode {
    kReuse,  ///< slabs are kept and rewound (the default, reuse-first)
    kHeap,   ///< every checkout is a fresh allocation (baseline/bench mode)
  };

  /// \brief Monotone counters (never reset) plus current reservation.
  struct Stats {
    std::size_t slab_allocations = 0;  ///< cumulative backing allocations
    std::size_t bytes_reserved = 0;    ///< backing bytes currently held
    std::size_t bytes_in_use = 0;      ///< bytes checked out right now
    std::size_t peak_bytes_in_use = 0; ///< high-water mark of bytes_in_use
    std::size_t checkouts = 0;         ///< cumulative Alloc calls
    std::size_t frames = 0;            ///< cumulative Frame releases
  };

  explicit ScratchArena(Mode mode = Mode::kReuse,
                        std::size_t initial_slab_bytes = kDefaultSlabBytes)
      : mode_(mode), next_slab_bytes_(initial_slab_bytes) {}

  ScratchArena(const ScratchArena&) = delete;
  ScratchArena& operator=(const ScratchArena&) = delete;

  /// \brief RAII checkout scope: rewinds the arena to the construction
  /// state on destruction (frees the frame's blocks in kHeap mode).
  class Frame {
   public:
    explicit Frame(ScratchArena& arena)
        : arena_(&arena),
          slab_index_(arena.current_),
          slab_used_(arena.slabs_.empty() ? 0 : arena.slabs_[arena.current_].used),
          heap_count_(arena.heap_blocks_.size()),
          bytes_in_use_(arena.stats_.bytes_in_use) {}
    ~Frame() { arena_->Rewind(slab_index_, slab_used_, heap_count_, bytes_in_use_); }

    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    ScratchArena* arena_;
    std::size_t slab_index_;
    std::size_t slab_used_;
    std::size_t heap_count_;
    std::size_t bytes_in_use_;
  };

  /// Checks out `count` uninitialised T (aligned; contents unspecified).
  template <typename T>
  std::span<T> Alloc(std::size_t count) {
    static_assert(std::is_trivially_destructible_v<T> &&
                      std::is_trivially_copyable_v<T>,
                  "arena checkouts are rewound, never destroyed");
    static_assert(alignof(T) <= kAlign, "over-aligned type");
    return {static_cast<T*>(AllocBytes(count * sizeof(T))), count};
  }

  /// Checks out `count` zero-filled T.
  template <typename T>
  std::span<T> AllocZeroed(std::size_t count) {
    std::span<T> out = Alloc<T>(count);
    std::memset(static_cast<void*>(out.data()), 0, count * sizeof(T));
    return out;
  }

  /// Rewinds every checkout (keeps the slabs in kReuse mode).
  void Reset();

  Mode mode() const { return mode_; }
  const Stats& stats() const { return stats_; }

 private:
  friend class Frame;

  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 16;
  static constexpr std::size_t kMaxSlabBytes = std::size_t{1} << 26;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  void* AllocBytes(std::size_t bytes);
  void Rewind(std::size_t slab_index, std::size_t slab_used,
              std::size_t heap_count, std::size_t bytes_in_use);

  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t used = 0;
  };

  Mode mode_;
  std::size_t next_slab_bytes_;
  std::vector<Slab> slabs_;
  std::size_t current_ = 0;  ///< slab cursor (kReuse)
  std::vector<std::unique_ptr<std::byte[]>> heap_blocks_;  ///< kHeap mode
  Stats stats_;
};

}  // namespace cpa

#endif  // CPA_UTIL_ARENA_H_
