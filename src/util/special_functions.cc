#include "util/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cpa {

double Digamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "Digamma domain error";
  double result = 0.0;
  // Recurrence: Psi(x) = Psi(x + 1) - 1/x, applied until x >= 6 where the
  // asymptotic expansion converges quickly.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: Psi(x) ~ ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double Trigamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "Trigamma domain error";
  double result = 0.0;
  while (x < 8.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Psi'(x) ~ 1/x + 1/(2x^2) + sum B_{2n} / x^{2n+1}.
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 -
                           inv2 * (1.0 / 30.0 -
                                   inv2 * (1.0 / 42.0 - inv2 * (1.0 / 30.0)))));
  return result;
}

double LogGamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "LogGamma domain error";
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, which is a data
  // race when prediction/sweep shards evaluate it concurrently. The
  // POSIX reentrant variant returns the sign through a local instead.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double LogMultivariateBeta(std::span<const double> alpha) {
  CPA_CHECK(!alpha.empty());
  double sum = 0.0;
  double log_gammas = 0.0;
  for (double a : alpha) {
    sum += a;
    log_gammas += LogGamma(a);
  }
  return log_gammas - LogGamma(sum);
}

double LogSumExp(std::span<const double> values) {
  if (values.empty()) return -std::numeric_limits<double>::infinity();
  const double max = *std::max_element(values.begin(), values.end());
  if (!std::isfinite(max)) return max;  // all -inf (or a stray +inf/NaN)
  double sum = 0.0;
  for (double v : values) sum += std::exp(v - max);
  return max + std::log(sum);
}

double SoftmaxInPlace(std::span<double> log_weights) {
  if (log_weights.empty()) return 0.0;
  const double log_norm = LogSumExp(log_weights);
  if (!std::isfinite(log_norm)) {
    // Degenerate input (all -inf): fall back to the uniform distribution so
    // downstream responsibilities stay well formed.
    const double uniform = 1.0 / static_cast<double>(log_weights.size());
    std::fill(log_weights.begin(), log_weights.end(), uniform);
    return log_norm;
  }
  for (double& v : log_weights) v = std::exp(v - log_norm);
  return log_norm;
}

double SoftmaxInPlace(std::span<double> log_weights, double floor_nats) {
  if (log_weights.empty()) return 0.0;
  double max = -std::numeric_limits<double>::infinity();
  for (double v : log_weights) max = std::max(max, v);
  if (!std::isfinite(max)) {
    const double uniform = 1.0 / static_cast<double>(log_weights.size());
    std::fill(log_weights.begin(), log_weights.end(), uniform);
    return max;
  }
  double sum = 0.0;
  for (double& v : log_weights) {
    if (v - max > -floor_nats) {
      v = std::exp(v - max);
      sum += v;
    } else {
      v = 0.0;
    }
  }
  for (double& v : log_weights) v /= sum;  // sum >= exp(0) = 1
  return max + std::log(sum);
}

double DirichletEntropy(std::span<const double> alpha) {
  CPA_CHECK(!alpha.empty());
  const std::size_t k = alpha.size();
  double sum = 0.0;
  for (double a : alpha) sum += a;
  double entropy = LogMultivariateBeta(alpha) +
                   (sum - static_cast<double>(k)) * Digamma(sum);
  for (double a : alpha) entropy -= (a - 1.0) * Digamma(a);
  return entropy;
}

void DirichletExpectedLog(std::span<const double> alpha, std::span<double> out) {
  CPA_CHECK_EQ(alpha.size(), out.size());
  double sum = 0.0;
  for (double a : alpha) sum += a;
  const double digamma_sum = Digamma(sum);
  for (std::size_t c = 0; c < alpha.size(); ++c) {
    out[c] = Digamma(alpha[c]) - digamma_sum;
  }
}

double BetaEntropy(double a, double b) {
  return LogBeta(a, b) - (a - 1.0) * Digamma(a) - (b - 1.0) * Digamma(b) +
         (a + b - 2.0) * Digamma(a + b);
}

double DirichletKL(std::span<const double> alpha, std::span<const double> beta) {
  CPA_CHECK_EQ(alpha.size(), beta.size());
  double alpha_sum = 0.0;
  for (double a : alpha) alpha_sum += a;
  // KL = ln B(beta) - ln B(alpha)
  //      + sum_c (alpha_c - beta_c) (Psi(alpha_c) - Psi(alpha_sum)).
  double kl = LogMultivariateBeta(beta) - LogMultivariateBeta(alpha);
  const double digamma_sum = Digamma(alpha_sum);
  for (std::size_t c = 0; c < alpha.size(); ++c) {
    kl += (alpha[c] - beta[c]) * (Digamma(alpha[c]) - digamma_sum);
  }
  return kl;
}

}  // namespace cpa
