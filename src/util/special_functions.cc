#include "util/special_functions.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace cpa {

double Digamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "Digamma domain error";
  double result = 0.0;
  // Recurrence: Psi(x) = Psi(x + 1) - 1/x, applied until x >= 6 where the
  // asymptotic expansion converges quickly.
  while (x < 6.0) {
    result -= 1.0 / x;
    x += 1.0;
  }
  // Asymptotic series: Psi(x) ~ ln x - 1/(2x) - sum B_{2n} / (2n x^{2n}).
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  result += std::log(x) - 0.5 * inv -
            inv2 * (1.0 / 12.0 -
                    inv2 * (1.0 / 120.0 -
                            inv2 * (1.0 / 252.0 -
                                    inv2 * (1.0 / 240.0 - inv2 * (1.0 / 132.0)))));
  return result;
}

double Trigamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "Trigamma domain error";
  double result = 0.0;
  while (x < 8.0) {
    result += 1.0 / (x * x);
    x += 1.0;
  }
  const double inv = 1.0 / x;
  const double inv2 = inv * inv;
  // Psi'(x) ~ 1/x + 1/(2x^2) + sum B_{2n} / x^{2n+1}.
  result += inv * (1.0 + 0.5 * inv +
                   inv2 * (1.0 / 6.0 -
                           inv2 * (1.0 / 30.0 -
                                   inv2 * (1.0 / 42.0 - inv2 * (1.0 / 30.0)))));
  return result;
}

double LogGamma(double x) {
  CPA_CHECK_GT(x, 0.0) << "LogGamma domain error";
#if defined(__GLIBC__) || defined(__APPLE__)
  // std::lgamma writes the process-global `signgam`, which is a data
  // race when prediction/sweep shards evaluate it concurrently. The
  // POSIX reentrant variant returns the sign through a local instead.
  int sign = 0;
  return lgamma_r(x, &sign);
#else
  return std::lgamma(x);
#endif
}

double LogBeta(double a, double b) {
  return LogGamma(a) + LogGamma(b) - LogGamma(a + b);
}

double LogMultivariateBeta(std::span<const double> alpha) {
  CPA_CHECK(!alpha.empty());
  double sum = 0.0;
  double log_gammas = 0.0;
  for (double a : alpha) {
    sum += a;
    log_gammas += LogGamma(a);
  }
  return log_gammas - LogGamma(sum);
}

// LogSumExp and both SoftmaxInPlace overloads are defined in
// core/sweep/sweep_kernels_avx2.cc — the dispatched-kernel TU — so every
// caller shares the runtime-selected scalar/AVX2 implementation.

double DirichletEntropy(std::span<const double> alpha) {
  CPA_CHECK(!alpha.empty());
  const std::size_t k = alpha.size();
  double sum = 0.0;
  for (double a : alpha) sum += a;
  double entropy = LogMultivariateBeta(alpha) +
                   (sum - static_cast<double>(k)) * Digamma(sum);
  for (double a : alpha) entropy -= (a - 1.0) * Digamma(a);
  return entropy;
}

void DirichletExpectedLog(std::span<const double> alpha, std::span<double> out) {
  CPA_CHECK_EQ(alpha.size(), out.size());
  double sum = 0.0;
  for (double a : alpha) sum += a;
  const double digamma_sum = Digamma(sum);
  for (std::size_t c = 0; c < alpha.size(); ++c) {
    out[c] = Digamma(alpha[c]) - digamma_sum;
  }
}

double BetaEntropy(double a, double b) {
  return LogBeta(a, b) - (a - 1.0) * Digamma(a) - (b - 1.0) * Digamma(b) +
         (a + b - 2.0) * Digamma(a + b);
}

double DirichletKL(std::span<const double> alpha, std::span<const double> beta) {
  CPA_CHECK_EQ(alpha.size(), beta.size());
  double alpha_sum = 0.0;
  for (double a : alpha) alpha_sum += a;
  // KL = ln B(beta) - ln B(alpha)
  //      + sum_c (alpha_c - beta_c) (Psi(alpha_c) - Psi(alpha_sum)).
  double kl = LogMultivariateBeta(beta) - LogMultivariateBeta(alpha);
  const double digamma_sum = Digamma(alpha_sum);
  for (std::size_t c = 0; c < alpha.size(); ++c) {
    kl += (alpha[c] - beta[c]) * (Digamma(alpha[c]) - digamma_sum);
  }
  return kl;
}

}  // namespace cpa
