#ifndef CPA_UTIL_RNG_H_
#define CPA_UTIL_RNG_H_

/// \file rng.h
/// \brief Deterministic random number generation and sampling primitives.
///
/// All stochastic components of libcpa (simulators, initialisers, batch
/// shufflers) draw from an explicitly seeded `Rng` so that every experiment
/// is reproducible bit-for-bit. The generator is xoshiro256**, seeded
/// through splitmix64; distributions are implemented directly on top of it
/// (no reliance on unspecified `std::` distribution algorithms, which vary
/// across standard libraries).

#include <cstdint>
#include <span>
#include <vector>

namespace cpa {

/// \brief Deterministic pseudo-random generator with sampling helpers.
///
/// Not thread-safe; use `Split()` to derive independent per-thread streams.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Returns the next raw 64-bit output.
  std::uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) for bound >= 1.
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal via Box–Muller (cached second draw).
  double NextGaussian();

  /// Gamma(shape, scale=1) via Marsaglia–Tsang, with the boost trick for
  /// shape < 1.
  double NextGamma(double shape);

  /// Beta(a, b) draw.
  double NextBeta(double a, double b);

  /// Categorical draw from non-negative (unnormalised) weights.
  /// Returns an index in [0, weights.size()).
  std::size_t NextCategorical(std::span<const double> weights);

  /// Dirichlet(alpha) draw written into `out` (same size as `alpha`).
  void NextDirichlet(std::span<const double> alpha, std::span<double> out);

  /// Multinomial counts: n trials over `probs` (normalised internally),
  /// written into `out_counts` (same size as `probs`).
  void NextMultinomial(std::uint64_t n, std::span<const double> probs,
                       std::span<std::uint32_t> out_counts);

  /// Zipf-like draw over [0, n): P(k) ∝ 1/(k+1)^s. Used for skewed
  /// worker/item activity. O(n) setup-free inverse-CDF by rejection.
  std::size_t NextZipf(std::size_t n, double s);

  /// Poisson(lambda) draw (Knuth's method for small lambda, normal
  /// approximation above 64).
  std::uint64_t NextPoisson(double lambda);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBounded(i));
      std::swap(values[i - 1], values[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n), in
  /// selection order (not sorted).
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

  /// Derives an independent generator (for per-thread streams).
  Rng Split();

 private:
  std::uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace cpa

#endif  // CPA_UTIL_RNG_H_
