#include "util/rng.h"

#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace cpa {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

inline std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // Avoid the all-zero state, which is a fixed point of xoshiro.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::NextUint64() {
  // xoshiro256** step.
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

std::uint64_t Rng::NextBounded(std::uint64_t bound) {
  CPA_CHECK_GE(bound, 1u);
  // Debiased modulo via rejection (Lemire-style threshold).
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInt(std::int64_t lo, std::int64_t hi) {
  CPA_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(NextBounded(span));
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(angle);
  has_cached_gaussian_ = true;
  return radius * std::cos(angle);
}

double Rng::NextGamma(double shape) {
  CPA_CHECK_GT(shape, 0.0);
  if (shape < 1.0) {
    // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}.
    const double u = std::max(NextDouble(), 1e-300);
    return NextGamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia–Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = NextGaussian();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 1e-300 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::NextBeta(double a, double b) {
  const double x = NextGamma(a);
  const double y = NextGamma(b);
  const double sum = x + y;
  return sum > 0.0 ? x / sum : 0.5;
}

std::size_t Rng::NextCategorical(std::span<const double> weights) {
  CPA_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    CPA_CHECK_GE(w, 0.0);
    total += w;
  }
  if (total <= 0.0) return static_cast<std::size_t>(NextBounded(weights.size()));
  double u = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // numerical slack
}

void Rng::NextDirichlet(std::span<const double> alpha, std::span<double> out) {
  CPA_CHECK_EQ(alpha.size(), out.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alpha.size(); ++i) {
    out[i] = NextGamma(alpha[i]);
    total += out[i];
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(out.size());
    for (double& v : out) v = uniform;
    return;
  }
  for (double& v : out) v /= total;
}

void Rng::NextMultinomial(std::uint64_t n, std::span<const double> probs,
                          std::span<std::uint32_t> out_counts) {
  CPA_CHECK_EQ(probs.size(), out_counts.size());
  std::fill(out_counts.begin(), out_counts.end(), 0u);
  double total = std::accumulate(probs.begin(), probs.end(), 0.0);
  if (total <= 0.0 || probs.empty()) return;
  // Sequential conditional binomials would need a Binomial sampler; with the
  // small n used in crowdsourcing simulation, n independent categorical
  // draws are simpler and exact.
  for (std::uint64_t trial = 0; trial < n; ++trial) {
    ++out_counts[NextCategorical(probs)];
  }
}

std::size_t Rng::NextZipf(std::size_t n, double s) {
  CPA_CHECK_GE(n, 1u);
  if (n == 1) return 0;
  // Rejection sampling against the continuous envelope 1/x^s on [1, n+1).
  const double exponent = s;
  for (;;) {
    const double u = NextDouble();
    double x;
    if (std::abs(exponent - 1.0) < 1e-12) {
      x = std::pow(static_cast<double>(n) + 1.0, u);
    } else {
      const double t = std::pow(static_cast<double>(n) + 1.0, 1.0 - exponent);
      x = std::pow(u * (t - 1.0) + 1.0, 1.0 / (1.0 - exponent));
    }
    const std::size_t k = static_cast<std::size_t>(x) - 1;
    if (k >= n) continue;
    const double ratio =
        std::pow(static_cast<double>(k + 1) / x, exponent);
    if (NextDouble() < ratio) return k;
  }
}

std::uint64_t Rng::NextPoisson(double lambda) {
  CPA_CHECK_GE(lambda, 0.0);
  if (lambda <= 0.0) return 0;
  if (lambda < 64.0) {
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double product = NextDouble();
    while (product > limit) {
      ++k;
      product *= NextDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction for large lambda.
  const double draw = lambda + std::sqrt(lambda) * NextGaussian() + 0.5;
  return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n, std::size_t k) {
  CPA_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected inserts, no O(n) scratch when k << n.
  std::vector<std::size_t> chosen;
  chosen.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const std::size_t t = static_cast<std::size_t>(NextBounded(j + 1));
    bool seen = false;
    for (std::size_t c : chosen) {
      if (c == t) {
        seen = true;
        break;
      }
    }
    chosen.push_back(seen ? j : t);
  }
  return chosen;
}

Rng Rng::Split() { return Rng(NextUint64() ^ 0xD1B54A32D192ED03ULL); }

}  // namespace cpa
