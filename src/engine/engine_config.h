#ifndef CPA_ENGINE_ENGINE_CONFIG_H_
#define CPA_ENGINE_ENGINE_CONFIG_H_

/// \file engine_config.h
/// \brief One configuration for every consensus method.
///
/// An `EngineConfig` is a registry key (`method`) plus the stream
/// dimensions and the typed option structs of each method family; engines
/// read only the structs they care about (MV reads `majority`, the CPA
/// variants read `cpa`, CPA-SVI reads `cpa` + `svi`, ...). Configs
/// round-trip through the `util/json.h` document (the same JSON dialect the
/// `BENCH_*.json` reports use) and can be overridden from `util/flags`
/// command lines, so bench binaries and services construct sessions from
/// one description.

#include <cstddef>
#include <string>

#include "baselines/cbcc.h"
#include "baselines/dawid_skene.h"
#include "baselines/majority_vote.h"
#include "core/cpa_options.h"
#include "core/svi.h"
#include "data/dataset.h"
#include "util/flags.h"
#include "util/json.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace cpa {

/// \brief Everything needed to open a `ConsensusEngine` session.
struct EngineConfig {
  /// Registry name: "MV", "EM", "cBCC", "CPA", "CPA-NoZ", "CPA-NoL",
  /// "CPA-SVI", or any externally registered method.
  std::string method = "CPA";

  /// Stream dimensions (upper bounds; unseen entities keep initial state).
  std::size_t num_items = 0;
  std::size_t num_workers = 0;
  std::size_t num_labels = 0;

  /// Typed per-family options. Engines ignore the structs of other
  /// families, so one config can describe any method.
  CpaOptions cpa;
  SviOptions svi;
  MajorityVoteOptions majority;
  DawidSkeneOptions em;
  CbccOptions cbcc;

  /// Threads for the parallel sweep phases (core/sweep/). 1 (default) runs
  /// sequentially; engines whose method parallelises construct and own a
  /// `ThreadPool` of this size when no runtime `pool` override is given.
  /// Results are bit-identical for any value (sweep_scheduler.h).
  std::size_t num_threads = 1;

  /// Runtime executor override for parallel sweep phases; takes precedence
  /// over `num_threads` when non-null (the session will not own it). This
  /// is how the multi-session server injects its shared pool: each session
  /// gets a `ServerScheduler` lane here instead of owning a pool.
  /// Runtime-only, never serialized.
  Executor* pool = nullptr;

  /// Config sized for a concrete dataset: dimensions from the dataset,
  /// `cpa` from `CpaOptions::Recommended`.
  static EngineConfig ForDataset(std::string method, const Dataset& dataset);

  /// Structural validation (non-empty method, positive label universe,
  /// option-struct invariants of the named family are checked by `Open`).
  Status Validate() const;

  /// Serializes `method`, dimensions, and the tunable fields of each
  /// option struct (untouched knobs keep their defaults on parse, so a
  /// partial document is a valid config).
  JsonValue ToJson() const;
  static Result<EngineConfig> FromJson(const JsonValue& json);

  /// Applies `--method`, `--num-items/--num-workers/--num-labels`,
  /// `--cpa-iterations`, `--max-communities`, `--max-clusters`,
  /// `--workers-per-batch`, `--forgetting-rate`, `--mv-threshold` on top of
  /// `*this` (flags only override what they name).
  Result<EngineConfig> WithFlags(const Flags& flags) const;
};

}  // namespace cpa

#endif  // CPA_ENGINE_ENGINE_CONFIG_H_
