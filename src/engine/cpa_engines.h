#ifndef CPA_ENGINE_CPA_ENGINES_H_
#define CPA_ENGINE_CPA_ENGINES_H_

/// \file cpa_engines.h
/// \brief The CPA model behind the `ConsensusEngine` session API.
///
/// - `CpaOfflineEngine`: accumulate-then-refit over `SolveCpaOffline` for
///   the offline variants ("CPA", "CPA-NoZ", "CPA-NoL"); exposes the fitted
///   posterior for diagnostics.
/// - `CpaSviEngine`: the native online learner — `CpaOnline` (Algorithm 2)
///   consumes batches incrementally and never refits ("CPA-SVI").

#include <memory>
#include <string>

#include "core/cpa.h"
#include "engine/engine_config.h"
#include "engine/offline_engine.h"

namespace cpa {

class EngineRegistry;

/// \brief Offline CPA as a session: refits (VI from scratch on everything
/// seen) when a snapshot follows new answers.
class CpaOfflineEngine : public AccumulatingEngine {
 public:
  /// `pool` overrides `num_threads` when non-null (caller-owned); otherwise
  /// the session constructs and owns a pool of `num_threads` workers
  /// (1 = sequential). Fits are bit-identical for any thread count.
  CpaOfflineEngine(CpaOptions options, CpaVariant variant, std::size_t num_labels,
                   Executor* pool = nullptr, std::size_t num_threads = 1);

  /// The posterior behind the last snapshot (nullptr before the first).
  const CpaModel* model() const { return solved_ ? &solution_.model : nullptr; }
  CpaModel* mutable_model() { return solved_ ? &solution_.model : nullptr; }

  /// The whole last solution (nullptr before the first refit). Lets the
  /// one-shot `CpaAggregator` adapter move predictions/scores out of a
  /// dying engine instead of copying them from the shared snapshot.
  CpaSolution* mutable_solution() { return solved_ ? &solution_ : nullptr; }

  /// Inference diagnostics of the last refit.
  const FitStats& fit_stats() const { return solution_.stats; }

 protected:
  Result<ConsensusSnapshot> Refit(const AnswerMatrix& accumulated) override;

 private:
  CpaOptions options_;
  CpaVariant variant_;
  std::unique_ptr<ThreadPool> owned_pool_;
  Executor* pool_;
  CpaSolution solution_;
  bool solved_ = false;
};

/// \brief Online CPA as a session: `Observe` is one SVI step, `Snapshot`
/// predicts from the current model state (no refit, any time).
class CpaSviEngine : public ConsensusEngine {
 public:
  /// Builds the learner over the stream dimensions of `config` (which must
  /// name upper bounds for items/workers; unseen entities keep their
  /// initial state).
  static Result<std::unique_ptr<CpaSviEngine>> Create(const EngineConfig& config);

  /// The wrapped learner (current model, learning-rate diagnostics).
  const CpaOnline& online() const { return online_; }

 protected:
  Status OnObserve(const AnswerMatrix& answers,
                   std::span<const std::size_t> indices) override;
  Result<ConsensusSnapshot> OnSnapshot(const AnswerMatrix& stream) override;

  /// Checkpointing: delegates to `CpaOnline::SaveState`/`RestoreState`.
  Status OnSaveState(CheckpointWriter& writer) const override;
  Status OnRestoreState(CheckpointReader& reader) override;

 private:
  CpaSviEngine(CpaOnline online, std::unique_ptr<ThreadPool> owned_pool);

  // Declared before the learner, which holds a raw pointer to it.
  std::unique_ptr<ThreadPool> owned_pool_;
  CpaOnline online_;
};

/// Installs the paper's §5.2 line-up into `registry`: "MV", "EM", "cBCC"
/// behind the generic offline adapter, "CPA", "CPA-NoZ", "CPA-NoL" behind
/// `CpaOfflineEngine`, and "CPA-SVI" behind `CpaSviEngine`. Called once by
/// `EngineRegistry::Global()`.
void RegisterBuiltinEngines(EngineRegistry& registry);

}  // namespace cpa

#endif  // CPA_ENGINE_CPA_ENGINES_H_
