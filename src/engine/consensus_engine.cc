#include "engine/consensus_engine.h"

#include <numeric>
#include <vector>

#include "util/string_utils.h"

namespace cpa {

Status ConsensusEngine::Observe(const AnswerBatch& batch) {
  if (finalized_) {
    return Status::FailedPrecondition(
        StrFormat("%s session is finalized; open a fresh engine to observe "
                  "more answers",
                  name_.c_str()));
  }
  if (batch.answers == nullptr) {
    return Status::InvalidArgument("AnswerBatch.answers must not be null");
  }
  if (stream_ != nullptr && stream_ != batch.answers) {
    return Status::InvalidArgument(
        StrFormat("%s session is bound to one answer stream; every batch "
                  "must reference the same AnswerMatrix",
                  name_.c_str()));
  }
  for (std::size_t index : batch.indices) {
    if (index >= batch.answers->num_answers()) {
      return Status::OutOfRange(
          StrFormat("batch index %zu out of range (stream holds %zu answers)",
                    index, batch.answers->num_answers()));
    }
  }
  stream_ = batch.answers;  // bind even for empty batches
  if (batch.indices.empty()) {
    return Status::OK();
  }
  CPA_RETURN_NOT_OK(OnObserve(*batch.answers, batch.indices));
  ++batches_seen_;
  answers_seen_ += batch.indices.size();
  return Status::OK();
}

Result<SharedSnapshot> ConsensusEngine::Snapshot() {
  if (finalized_) {
    return final_snapshot_;
  }
  // Counters move exactly when engine state does (a successful non-empty
  // Observe), so a published snapshot stays valid until then — hand the
  // same immutable object back instead of rebuilding or copying it.
  if (cached_ != nullptr && cached_batches_ == batches_seen_ &&
      cached_answers_ == answers_seen_ && cached_stream_ == stream_) {
    return cached_;
  }
  ConsensusSnapshot snapshot;
  if (stream_ != nullptr) {
    CPA_ASSIGN_OR_RETURN(snapshot, OnSnapshot(*stream_));
  }
  snapshot.method = name_;
  snapshot.batches_seen = batches_seen_;
  snapshot.answers_seen = answers_seen_;
  snapshot.finalized = false;
  cached_ = std::make_shared<const ConsensusSnapshot>(std::move(snapshot));
  cached_batches_ = batches_seen_;
  cached_answers_ = answers_seen_;
  cached_stream_ = stream_;
  return cached_;
}

Result<SharedSnapshot> ConsensusEngine::Finalize() {
  if (finalized_) {
    return final_snapshot_;
  }
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, Snapshot());
  // One body copy at end-of-life to stamp the finalized flag; every later
  // Snapshot/Finalize returns this same object.
  auto final_snapshot = std::make_shared<ConsensusSnapshot>(*snapshot);
  final_snapshot->finalized = true;
  finalized_ = true;
  final_snapshot_ = std::move(final_snapshot);
  cached_ = nullptr;
  return final_snapshot_;
}

Status ObserveAll(ConsensusEngine& engine, const AnswerMatrix& answers) {
  std::vector<std::size_t> all(answers.num_answers());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return engine.Observe({&answers, all});
}

}  // namespace cpa
