#include "engine/consensus_engine.h"

#include <numeric>
#include <utility>
#include <vector>

#include "engine/checkpoint.h"
#include "util/string_utils.h"

namespace cpa {

namespace {

/// "CPAK" little-endian: engine checkpoint blobs start with this magic.
constexpr std::uint32_t kEngineCheckpointMagic = 0x4B415043u;
constexpr std::uint16_t kEngineCheckpointVersion = 1;

}  // namespace

Status ConsensusEngine::Observe(const AnswerBatch& batch) {
  if (finalized_) {
    return Status::FailedPrecondition(
        StrFormat("%s session is finalized; open a fresh engine to observe "
                  "more answers",
                  name_.c_str()));
  }
  if (batch.answers == nullptr) {
    return Status::InvalidArgument("AnswerBatch.answers must not be null");
  }
  if (stream_ != nullptr && stream_ != batch.answers) {
    return Status::InvalidArgument(
        StrFormat("%s session is bound to one answer stream; every batch "
                  "must reference the same AnswerMatrix",
                  name_.c_str()));
  }
  for (std::size_t index : batch.indices) {
    if (index >= batch.answers->num_answers()) {
      return Status::OutOfRange(
          StrFormat("batch index %zu out of range (stream holds %zu answers)",
                    index, batch.answers->num_answers()));
    }
  }
  stream_ = batch.answers;  // bind even for empty batches
  if (batch.indices.empty()) {
    return Status::OK();
  }
  CPA_RETURN_NOT_OK(OnObserve(*batch.answers, batch.indices));
  ++batches_seen_;
  answers_seen_ += batch.indices.size();
  return Status::OK();
}

Result<SharedSnapshot> ConsensusEngine::Snapshot() {
  if (finalized_) {
    return final_snapshot_;
  }
  // Counters move exactly when engine state does (a successful non-empty
  // Observe), so a published snapshot stays valid until then — hand the
  // same immutable object back instead of rebuilding or copying it.
  if (cached_ != nullptr && cached_batches_ == batches_seen_ &&
      cached_answers_ == answers_seen_ && cached_stream_ == stream_) {
    return cached_;
  }
  ConsensusSnapshot snapshot;
  if (stream_ != nullptr) {
    CPA_ASSIGN_OR_RETURN(snapshot, OnSnapshot(*stream_));
  }
  snapshot.method = name_;
  snapshot.batches_seen = batches_seen_;
  snapshot.answers_seen = answers_seen_;
  snapshot.finalized = false;
  cached_ = std::make_shared<const ConsensusSnapshot>(std::move(snapshot));
  cached_batches_ = batches_seen_;
  cached_answers_ = answers_seen_;
  cached_stream_ = stream_;
  return cached_;
}

Result<SharedSnapshot> ConsensusEngine::Finalize() {
  if (finalized_) {
    return final_snapshot_;
  }
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, Snapshot());
  // One body copy at end-of-life to stamp the finalized flag; every later
  // Snapshot/Finalize returns this same object.
  auto final_snapshot = std::make_shared<ConsensusSnapshot>(*snapshot);
  final_snapshot->finalized = true;
  finalized_ = true;
  final_snapshot_ = std::move(final_snapshot);
  cached_ = nullptr;
  return final_snapshot_;
}

Status ConsensusEngine::OnSaveState(CheckpointWriter& writer) const {
  (void)writer;
  return Status::Unimplemented(
      StrFormat("%s does not support checkpointing", name_.c_str()));
}

Status ConsensusEngine::OnRestoreState(CheckpointReader& reader) {
  (void)reader;
  return Status::Unimplemented(
      StrFormat("%s does not support checkpointing", name_.c_str()));
}

Result<std::string> ConsensusEngine::SaveState() const {
  CheckpointWriter writer;
  writer.WriteU32(kEngineCheckpointMagic);
  writer.WriteU16(kEngineCheckpointVersion);
  writer.WriteString(name_);
  writer.WriteBool(stream_ != nullptr);
  writer.WriteU64(batches_seen_);
  writer.WriteU64(answers_seen_);
  writer.WriteBool(finalized_);
  // Only a currently-valid base cache is worth carrying: a stale one would
  // be discarded on the next Snapshot anyway.
  const bool cache_valid = cached_ != nullptr &&
                           cached_batches_ == batches_seen_ &&
                           cached_answers_ == answers_seen_ &&
                           cached_stream_ == stream_;
  writer.WriteBool(cache_valid);
  if (cache_valid) WriteConsensusSnapshot(writer, *cached_);
  writer.WriteBool(final_snapshot_ != nullptr);
  if (final_snapshot_ != nullptr) {
    WriteConsensusSnapshot(writer, *final_snapshot_);
  }
  CPA_RETURN_NOT_OK(OnSaveState(writer));
  return writer.Take();
}

Status ConsensusEngine::RestoreState(std::string_view state,
                                     const AnswerMatrix* stream) {
  if (batches_seen_ != 0 || answers_seen_ != 0 || stream_ != nullptr ||
      finalized_) {
    return Status::FailedPrecondition(
        "RestoreState requires a freshly opened engine");
  }
  CheckpointReader reader(state);
  CPA_ASSIGN_OR_RETURN(const std::uint32_t magic, reader.ReadU32());
  if (magic != kEngineCheckpointMagic) {
    return Status::InvalidArgument("not an engine checkpoint (bad magic)");
  }
  CPA_ASSIGN_OR_RETURN(const std::uint16_t version, reader.ReadU16());
  if (version != kEngineCheckpointVersion) {
    return Status::InvalidArgument(
        StrFormat("unsupported engine checkpoint version %u",
                  static_cast<unsigned>(version)));
  }
  CPA_ASSIGN_OR_RETURN(const std::string saved_name, reader.ReadString());
  if (saved_name != name_) {
    return Status::InvalidArgument(
        StrFormat("checkpoint is for method '%s', this engine is '%s'",
                  saved_name.c_str(), name_.c_str()));
  }
  CPA_ASSIGN_OR_RETURN(const bool bound, reader.ReadBool());
  if (bound && stream == nullptr) {
    return Status::InvalidArgument(
        "checkpoint had a bound stream; RestoreState needs the rebuilt "
        "stream matrix");
  }
  CPA_ASSIGN_OR_RETURN(const std::size_t batches, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const std::size_t answers, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(const bool was_finalized, reader.ReadBool());
  CPA_ASSIGN_OR_RETURN(const bool has_cached, reader.ReadBool());
  SharedSnapshot cached;
  if (has_cached) {
    CPA_ASSIGN_OR_RETURN(ConsensusSnapshot snapshot,
                         ReadConsensusSnapshot(reader));
    cached = std::make_shared<const ConsensusSnapshot>(std::move(snapshot));
  }
  CPA_ASSIGN_OR_RETURN(const bool has_final, reader.ReadBool());
  SharedSnapshot final_snapshot;
  if (has_final) {
    CPA_ASSIGN_OR_RETURN(ConsensusSnapshot snapshot,
                         ReadConsensusSnapshot(reader));
    final_snapshot =
        std::make_shared<const ConsensusSnapshot>(std::move(snapshot));
  }
  CPA_RETURN_NOT_OK(OnRestoreState(reader));
  CPA_RETURN_NOT_OK(reader.ExpectEnd());
  stream_ = bound ? stream : nullptr;
  batches_seen_ = batches;
  answers_seen_ = answers;
  finalized_ = was_finalized;
  cached_ = std::move(cached);
  cached_batches_ = batches;
  cached_answers_ = answers;
  cached_stream_ = stream_;
  final_snapshot_ = std::move(final_snapshot);
  return Status::OK();
}

Status ObserveAll(ConsensusEngine& engine, const AnswerMatrix& answers) {
  std::vector<std::size_t> all(answers.num_answers());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return engine.Observe({&answers, all});
}

}  // namespace cpa
