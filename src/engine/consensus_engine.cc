#include "engine/consensus_engine.h"

#include <numeric>
#include <vector>

#include "util/string_utils.h"

namespace cpa {

Status ConsensusEngine::Observe(const AnswerBatch& batch) {
  if (finalized_) {
    return Status::FailedPrecondition(
        StrFormat("%s session is finalized; open a fresh engine to observe "
                  "more answers",
                  name_.c_str()));
  }
  if (batch.answers == nullptr) {
    return Status::InvalidArgument("AnswerBatch.answers must not be null");
  }
  if (stream_ != nullptr && stream_ != batch.answers) {
    return Status::InvalidArgument(
        StrFormat("%s session is bound to one answer stream; every batch "
                  "must reference the same AnswerMatrix",
                  name_.c_str()));
  }
  for (std::size_t index : batch.indices) {
    if (index >= batch.answers->num_answers()) {
      return Status::OutOfRange(
          StrFormat("batch index %zu out of range (stream holds %zu answers)",
                    index, batch.answers->num_answers()));
    }
  }
  stream_ = batch.answers;  // bind even for empty batches
  if (batch.indices.empty()) {
    return Status::OK();
  }
  CPA_RETURN_NOT_OK(OnObserve(*batch.answers, batch.indices));
  ++batches_seen_;
  answers_seen_ += batch.indices.size();
  return Status::OK();
}

Result<ConsensusSnapshot> ConsensusEngine::Snapshot() {
  if (finalized_) {
    return final_snapshot_;
  }
  ConsensusSnapshot snapshot;
  if (stream_ != nullptr) {
    CPA_ASSIGN_OR_RETURN(snapshot, OnSnapshot(*stream_));
  }
  snapshot.method = name_;
  snapshot.batches_seen = batches_seen_;
  snapshot.answers_seen = answers_seen_;
  snapshot.finalized = false;
  return snapshot;
}

Result<ConsensusSnapshot> ConsensusEngine::Finalize() {
  if (finalized_) {
    return final_snapshot_;
  }
  CPA_ASSIGN_OR_RETURN(ConsensusSnapshot snapshot, Snapshot());
  snapshot.finalized = true;
  finalized_ = true;
  final_snapshot_ = snapshot;
  return snapshot;
}

Status ObserveAll(ConsensusEngine& engine, const AnswerMatrix& answers) {
  std::vector<std::size_t> all(answers.num_answers());
  std::iota(all.begin(), all.end(), std::size_t{0});
  return engine.Observe({&answers, all});
}

}  // namespace cpa
