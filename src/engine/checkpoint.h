#ifndef CPA_ENGINE_CHECKPOINT_H_
#define CPA_ENGINE_CHECKPOINT_H_

/// \file checkpoint.h
/// \brief Versioned binary serialization of engine state.
///
/// The scale-out plane (docs/ARCHITECTURE.md) moves whole sessions between
/// worker processes: a session is checkpointed on worker A, shipped over the
/// wire as an opaque blob, and restored on worker B, after which the
/// continued run must be bit-identical to an uninterrupted one. This file
/// provides the primitives those blobs are built from:
///
///  - `CheckpointWriter`: append-only little-endian encoder (the
///    `util/endian.h` idiom the frame codec already uses) with composite
///    helpers for the shapes engine state is made of — doubles banks,
///    matrices, label sets, strings.
///  - `CheckpointReader`: the strict mirror. Every read is bounds-checked,
///    every count is validated against the bytes that could possibly back
///    it before any allocation (the `binary_codec` lying-count discipline),
///    and `ExpectEnd` rejects trailing garbage. A truncated or corrupted
///    blob yields a `Status`, never UB and never an over-allocation.
///
/// Blob layout is owned by the writers: `ConsensusEngine::SaveState`
/// (engine framing + per-engine sections, see consensus_engine.h) and
/// `SessionManager::Checkpoint` (session framing, see
/// server/session_manager.h). Both start with a magic + version so foreign
/// or future blobs fail fast with a clear error.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "data/label_set.h"
#include "util/matrix.h"
#include "util/status.h"

namespace cpa {

// From engine/consensus_engine.h; only the snapshot helpers below need it,
// and keeping this header dependency-light lets core/ (cpa_model, svi)
// implement their checkpoint sections without pulling in the engine layer.
struct ConsensusSnapshot;

/// \brief Append-only little-endian encoder for checkpoint blobs.
class CheckpointWriter {
 public:
  void WriteU8(std::uint8_t value);
  void WriteU16(std::uint16_t value);
  void WriteU32(std::uint32_t value);
  void WriteU64(std::uint64_t value);
  void WriteBool(bool value);
  void WriteDouble(double value);

  /// u64 count followed by the raw size_t values as u64.
  void WriteSize(std::size_t value) { WriteU64(value); }

  /// u32 byte length + bytes.
  void WriteString(std::string_view value);

  /// u64 count + IEEE-754 doubles.
  void WriteDoubles(std::span<const double> values);

  /// u64 count + u64 values.
  void WriteSizes(std::span<const std::size_t> values);

  /// u64 count + u32 values.
  void WriteU32s(std::span<const std::uint32_t> values);

  /// u64 count + one u8 (0/1) per flag.
  void WriteBools(const std::vector<bool>& values);

  /// u64 rows + u64 cols + row-major doubles.
  void WriteMatrix(const Matrix& matrix);

  /// u32 count + u32 label ids (sorted, as stored).
  void WriteLabelSet(const LabelSet& labels);

  /// The encoded bytes so far.
  const std::string& bytes() const { return bytes_; }

  /// Moves the encoded bytes out.
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// \brief Strict bounds-checked decoder over a checkpoint blob.
///
/// Reads return `Result`; the first failure poisons nothing (the reader
/// simply refuses to advance past the end), but callers are expected to
/// propagate the error immediately. Counts are validated against
/// `remaining()` before any container is sized, so a lying count cannot
/// trigger a huge allocation.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::string_view bytes) : bytes_(bytes) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<bool> ReadBool();
  Result<double> ReadDouble();
  Result<std::size_t> ReadSize();
  Result<std::string> ReadString();
  Result<std::vector<double>> ReadDoubles();
  Result<std::vector<std::size_t>> ReadSizes();
  Result<std::vector<std::uint32_t>> ReadU32s();
  Result<std::vector<bool>> ReadBools();
  Result<Matrix> ReadMatrix();
  Result<LabelSet> ReadLabelSet();

  /// OK iff every byte has been consumed.
  Status ExpectEnd() const;

  /// Bytes not yet consumed.
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  template <typename T>
  Result<T> ReadScalar();

  std::string_view bytes_;
  std::size_t pos_ = 0;
};

/// \name Snapshot (de)serialization
///
/// A published `ConsensusSnapshot` is part of both the engine blob (the
/// base-level cache and final snapshot) and the session blob (the published
/// snapshot pollers see). Serializing it — rather than recomputing on
/// restore — is what keeps restore bit-identical: recomputing would run
/// `Predict`, which for CPA-SVI mutates the model (GlobalRefresh).
/// @{
void WriteConsensusSnapshot(CheckpointWriter& writer,
                            const ConsensusSnapshot& snapshot);
Result<ConsensusSnapshot> ReadConsensusSnapshot(CheckpointReader& reader);
/// @}

}  // namespace cpa

#endif  // CPA_ENGINE_CHECKPOINT_H_
