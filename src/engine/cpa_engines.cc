#include "engine/cpa_engines.h"

#include <utility>

#include "engine/checkpoint.h"
#include "engine/engine_registry.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace cpa {

// ---------------------------------------------------------------------------
// CpaOfflineEngine
// ---------------------------------------------------------------------------

CpaOfflineEngine::CpaOfflineEngine(CpaOptions options, CpaVariant variant,
                                   std::size_t num_labels, Executor* pool,
                                   std::size_t num_threads)
    : AccumulatingEngine(std::string(CpaVariantName(variant)), num_labels),
      options_(options),
      variant_(variant),
      owned_pool_(pool == nullptr && num_threads > 1
                      ? std::make_unique<ThreadPool>(num_threads)
                      : nullptr),
      pool_(pool != nullptr ? pool : owned_pool_.get()) {}

Result<ConsensusSnapshot> CpaOfflineEngine::Refit(const AnswerMatrix& accumulated) {
  CPA_ASSIGN_OR_RETURN(
      solution_, SolveCpaOffline(accumulated, num_labels(), options_, variant_, pool_));
  solved_ = true;
  ConsensusSnapshot snapshot;
  snapshot.predictions = solution_.predictions;
  snapshot.label_scores = solution_.label_scores;
  snapshot.fit_stats = solution_.stats;
  return snapshot;
}

// ---------------------------------------------------------------------------
// CpaSviEngine
// ---------------------------------------------------------------------------

CpaSviEngine::CpaSviEngine(CpaOnline online, std::unique_ptr<ThreadPool> owned_pool)
    : ConsensusEngine("CPA-SVI"),
      owned_pool_(std::move(owned_pool)),
      online_(std::move(online)) {}

Result<std::unique_ptr<CpaSviEngine>> CpaSviEngine::Create(const EngineConfig& config) {
  CPA_RETURN_NOT_OK(config.Validate());
  std::unique_ptr<ThreadPool> owned_pool;
  Executor* pool = config.pool;
  if (pool == nullptr && config.num_threads > 1) {
    owned_pool = std::make_unique<ThreadPool>(config.num_threads);
    pool = owned_pool.get();
  }
  CPA_ASSIGN_OR_RETURN(
      CpaOnline online,
      CpaOnline::Create(config.num_items, config.num_workers, config.num_labels,
                        config.cpa, config.svi, pool));
  return std::unique_ptr<CpaSviEngine>(
      new CpaSviEngine(std::move(online), std::move(owned_pool)));
}

Status CpaSviEngine::OnObserve(const AnswerMatrix& answers,
                               std::span<const std::size_t> indices) {
  return online_.ObserveBatch(answers, indices);
}

Result<ConsensusSnapshot> CpaSviEngine::OnSnapshot(const AnswerMatrix& stream) {
  const Stopwatch prediction_watch;
  CPA_ASSIGN_OR_RETURN(CpaPrediction prediction, online_.Predict(stream));
  ConsensusSnapshot snapshot;
  snapshot.fit_stats.prediction_seconds = prediction_watch.ElapsedSeconds();
  snapshot.predictions = std::move(prediction.labels);
  snapshot.label_scores = std::move(prediction.scores);
  snapshot.fit_stats.iterations = online_.batches_seen();
  snapshot.learning_rate = online_.last_learning_rate();
  return snapshot;
}

Status CpaSviEngine::OnSaveState(CheckpointWriter& writer) const {
  online_.SaveState(writer);
  return Status::OK();
}

Status CpaSviEngine::OnRestoreState(CheckpointReader& reader) {
  return online_.RestoreState(reader);
}

// ---------------------------------------------------------------------------
// Built-in registrations
// ---------------------------------------------------------------------------

namespace {

EngineRegistry::Factory OfflineFactory(
    std::function<std::unique_ptr<Aggregator>(const EngineConfig&)> make) {
  return [make = std::move(make)](const EngineConfig& config)
             -> Result<std::unique_ptr<ConsensusEngine>> {
    // The session carries the registry name it was opened under
    // (config.method), which may differ from the aggregator's display name
    // (e.g. "EM" opens a DawidSkene that calls itself "EM+cost" when the
    // cost refinement is on) — callers key results by what they asked for.
    return std::unique_ptr<ConsensusEngine>(std::make_unique<OfflineEngine>(
        config.method, make(config), config.num_labels));
  };
}

EngineRegistry::Factory CpaOfflineFactory(CpaVariant variant) {
  return [variant](const EngineConfig& config)
             -> Result<std::unique_ptr<ConsensusEngine>> {
    return std::unique_ptr<ConsensusEngine>(std::make_unique<CpaOfflineEngine>(
        config.cpa, variant, config.num_labels, config.pool, config.num_threads));
  };
}

}  // namespace

void RegisterBuiltinEngines(EngineRegistry& registry) {
  auto must_register = [&registry](std::string name, EngineRegistry::Factory factory) {
    const Status status = registry.Register(std::move(name), std::move(factory));
    CPA_CHECK(status.ok()) << status.ToString();
  };
  must_register("MV", OfflineFactory([](const EngineConfig& config) {
                  return std::make_unique<MajorityVote>(config.majority);
                }));
  must_register("EM", OfflineFactory([](const EngineConfig& config) {
                  return std::make_unique<DawidSkene>(config.em);
                }));
  must_register("cBCC", OfflineFactory([](const EngineConfig& config) {
                  return std::make_unique<Cbcc>(config.cbcc);
                }));
  must_register("CPA", CpaOfflineFactory(CpaVariant::kFull));
  must_register("CPA-NoZ", CpaOfflineFactory(CpaVariant::kNoZ));
  must_register("CPA-NoL", CpaOfflineFactory(CpaVariant::kNoL));
  must_register(
      "CPA-SVI",
      [](const EngineConfig& config) -> Result<std::unique_ptr<ConsensusEngine>> {
        CPA_ASSIGN_OR_RETURN(std::unique_ptr<CpaSviEngine> engine,
                             CpaSviEngine::Create(config));
        return std::unique_ptr<ConsensusEngine>(std::move(engine));
      });
}

// ---------------------------------------------------------------------------
// CpaAggregator — declared in core/cpa.h, implemented here so core/ never
// includes engine/ headers. `Aggregate` is a thin engine client: one
// session, one batch holding every answer, one Finalize.
// ---------------------------------------------------------------------------

Result<AggregationResult> CpaAggregator::Aggregate(const AnswerMatrix& answers,
                                                   std::size_t num_labels) {
  CpaOfflineEngine engine(options_, variant_, num_labels, pool_);
  CPA_RETURN_NOT_OK(ObserveAll(engine, answers));
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, engine.Finalize());
  AggregationResult result;
  result.iterations = snapshot->fit_stats.iterations;
  // The engine dies with this call: move the solution out rather than
  // copying the predictions/scores from the immutable shared snapshot.
  if (CpaSolution* solution = engine.mutable_solution()) {
    stats_ = solution->stats;
    model_ = std::move(solution->model);
    fitted_ = true;
    result.predictions = std::move(solution->predictions);
    result.label_scores = std::move(solution->label_scores);
  }
  return result;
}

}  // namespace cpa
