#include "engine/checkpoint.h"

#include <limits>
#include <utility>

#include "engine/consensus_engine.h"
#include "util/endian.h"

namespace cpa {
namespace {

Status Truncated(std::string_view what) {
  return Status::InvalidArgument("checkpoint truncated reading " +
                                 std::string(what));
}

}  // namespace

void CheckpointWriter::WriteU8(std::uint8_t value) {
  AppendLittleEndian<std::uint8_t>(bytes_, value);
}

void CheckpointWriter::WriteU16(std::uint16_t value) {
  AppendLittleEndian<std::uint16_t>(bytes_, value);
}

void CheckpointWriter::WriteU32(std::uint32_t value) {
  AppendLittleEndian<std::uint32_t>(bytes_, value);
}

void CheckpointWriter::WriteU64(std::uint64_t value) {
  AppendLittleEndian<std::uint64_t>(bytes_, value);
}

void CheckpointWriter::WriteBool(bool value) { WriteU8(value ? 1 : 0); }

void CheckpointWriter::WriteDouble(double value) {
  AppendLittleEndianDouble(bytes_, value);
}

void CheckpointWriter::WriteString(std::string_view value) {
  CPA_CHECK_LE(value.size(), std::numeric_limits<std::uint32_t>::max());
  WriteU32(static_cast<std::uint32_t>(value.size()));
  bytes_.append(value);
}

void CheckpointWriter::WriteDoubles(std::span<const double> values) {
  WriteU64(values.size());
  for (const double value : values) WriteDouble(value);
}

void CheckpointWriter::WriteSizes(std::span<const std::size_t> values) {
  WriteU64(values.size());
  for (const std::size_t value : values) WriteU64(value);
}

void CheckpointWriter::WriteU32s(std::span<const std::uint32_t> values) {
  WriteU64(values.size());
  for (const std::uint32_t value : values) WriteU32(value);
}

void CheckpointWriter::WriteBools(const std::vector<bool>& values) {
  WriteU64(values.size());
  for (const bool value : values) WriteU8(value ? 1 : 0);
}

void CheckpointWriter::WriteMatrix(const Matrix& matrix) {
  WriteU64(matrix.rows());
  WriteU64(matrix.cols());
  for (const double value : matrix.Data()) WriteDouble(value);
}

void CheckpointWriter::WriteLabelSet(const LabelSet& labels) {
  CPA_CHECK_LE(labels.size(), std::numeric_limits<std::uint32_t>::max());
  WriteU32(static_cast<std::uint32_t>(labels.size()));
  for (const LabelId label : labels) WriteU32(label);
}

template <typename T>
Result<T> CheckpointReader::ReadScalar() {
  if (remaining() < sizeof(T)) return Truncated("scalar");
  const T value = ReadLittleEndian<T>(bytes_, pos_);
  pos_ += sizeof(T);
  return value;
}

Result<std::uint8_t> CheckpointReader::ReadU8() {
  return ReadScalar<std::uint8_t>();
}

Result<std::uint16_t> CheckpointReader::ReadU16() {
  return ReadScalar<std::uint16_t>();
}

Result<std::uint32_t> CheckpointReader::ReadU32() {
  return ReadScalar<std::uint32_t>();
}

Result<std::uint64_t> CheckpointReader::ReadU64() {
  return ReadScalar<std::uint64_t>();
}

Result<bool> CheckpointReader::ReadBool() {
  CPA_ASSIGN_OR_RETURN(const std::uint8_t raw, ReadU8());
  if (raw > 1) {
    return Status::InvalidArgument("checkpoint bool is not 0/1");
  }
  return raw == 1;
}

Result<double> CheckpointReader::ReadDouble() {
  if (remaining() < sizeof(double)) return Truncated("double");
  const double value = ReadLittleEndianDouble(bytes_, pos_);
  pos_ += sizeof(double);
  return value;
}

Result<std::size_t> CheckpointReader::ReadSize() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t raw, ReadU64());
  if (raw > std::numeric_limits<std::size_t>::max()) {
    return Status::InvalidArgument("checkpoint size_t overflows host");
  }
  return static_cast<std::size_t>(raw);
}

Result<std::string> CheckpointReader::ReadString() {
  CPA_ASSIGN_OR_RETURN(const std::uint32_t length, ReadU32());
  if (length > remaining()) return Truncated("string bytes");
  std::string value(bytes_.substr(pos_, length));
  pos_ += length;
  return value;
}

Result<std::vector<double>> CheckpointReader::ReadDoubles() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > remaining() / sizeof(double)) {
    return Status::InvalidArgument("checkpoint double count exceeds payload");
  }
  std::vector<double> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CPA_ASSIGN_OR_RETURN(const double value, ReadDouble());
    values.push_back(value);
  }
  return values;
}

Result<std::vector<std::size_t>> CheckpointReader::ReadSizes() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > remaining() / sizeof(std::uint64_t)) {
    return Status::InvalidArgument("checkpoint size count exceeds payload");
  }
  std::vector<std::size_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CPA_ASSIGN_OR_RETURN(const std::size_t value, ReadSize());
    values.push_back(value);
  }
  return values;
}

Result<std::vector<std::uint32_t>> CheckpointReader::ReadU32s() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > remaining() / sizeof(std::uint32_t)) {
    return Status::InvalidArgument("checkpoint u32 count exceeds payload");
  }
  std::vector<std::uint32_t> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CPA_ASSIGN_OR_RETURN(const std::uint32_t value, ReadU32());
    values.push_back(value);
  }
  return values;
}

Result<std::vector<bool>> CheckpointReader::ReadBools() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t count, ReadU64());
  if (count > remaining()) {
    return Status::InvalidArgument("checkpoint bool count exceeds payload");
  }
  std::vector<bool> values;
  values.reserve(static_cast<std::size_t>(count));
  for (std::uint64_t i = 0; i < count; ++i) {
    CPA_ASSIGN_OR_RETURN(const bool value, ReadBool());
    values.push_back(value);
  }
  return values;
}

Result<Matrix> CheckpointReader::ReadMatrix() {
  CPA_ASSIGN_OR_RETURN(const std::uint64_t rows, ReadU64());
  CPA_ASSIGN_OR_RETURN(const std::uint64_t cols, ReadU64());
  // Overflow-safe bound: rows and cols are each checked against the bytes
  // that could back a single row/column before the product is formed.
  if (rows > remaining() / sizeof(double)) {
    return Status::InvalidArgument("checkpoint matrix rows exceed payload");
  }
  if (cols > 0 && rows > 0 &&
      cols > remaining() / sizeof(double) / static_cast<std::size_t>(rows)) {
    return Status::InvalidArgument("checkpoint matrix size exceeds payload");
  }
  Matrix matrix(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  for (double& value : matrix.Data()) {
    CPA_ASSIGN_OR_RETURN(value, ReadDouble());
  }
  return matrix;
}

Result<LabelSet> CheckpointReader::ReadLabelSet() {
  CPA_ASSIGN_OR_RETURN(const std::uint32_t count, ReadU32());
  if (count > remaining() / sizeof(std::uint32_t)) {
    return Status::InvalidArgument("checkpoint label count exceeds payload");
  }
  std::vector<LabelId> labels;
  labels.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    CPA_ASSIGN_OR_RETURN(const std::uint32_t label, ReadU32());
    labels.push_back(label);
  }
  return LabelSet::FromUnsorted(std::move(labels));
}

Status CheckpointReader::ExpectEnd() const {
  if (remaining() != 0) {
    return Status::InvalidArgument(
        "checkpoint has " + std::to_string(remaining()) + " trailing bytes");
  }
  return Status::OK();
}

void WriteConsensusSnapshot(CheckpointWriter& writer,
                            const ConsensusSnapshot& snapshot) {
  writer.WriteString(snapshot.method);
  writer.WriteU64(snapshot.predictions.size());
  for (const LabelSet& labels : snapshot.predictions) {
    writer.WriteLabelSet(labels);
  }
  writer.WriteMatrix(snapshot.label_scores);
  writer.WriteU64(snapshot.fit_stats.iterations);
  writer.WriteDouble(snapshot.fit_stats.final_change);
  writer.WriteBool(snapshot.fit_stats.converged);
  writer.WriteDouble(snapshot.fit_stats.prediction_seconds);
  writer.WriteDoubles(snapshot.fit_stats.elbo_trace);
  writer.WriteU64(snapshot.batches_seen);
  writer.WriteU64(snapshot.answers_seen);
  writer.WriteDouble(snapshot.learning_rate);
  writer.WriteBool(snapshot.finalized);
}

Result<ConsensusSnapshot> ReadConsensusSnapshot(CheckpointReader& reader) {
  ConsensusSnapshot snapshot;
  CPA_ASSIGN_OR_RETURN(snapshot.method, reader.ReadString());
  CPA_ASSIGN_OR_RETURN(const std::uint64_t predictions, reader.ReadU64());
  // Each label set is at least a 4-byte count on the wire.
  if (predictions > reader.remaining() / sizeof(std::uint32_t)) {
    return Status::InvalidArgument(
        "checkpoint prediction count exceeds payload");
  }
  snapshot.predictions.reserve(static_cast<std::size_t>(predictions));
  for (std::uint64_t i = 0; i < predictions; ++i) {
    CPA_ASSIGN_OR_RETURN(LabelSet labels, reader.ReadLabelSet());
    snapshot.predictions.push_back(std::move(labels));
  }
  CPA_ASSIGN_OR_RETURN(snapshot.label_scores, reader.ReadMatrix());
  CPA_ASSIGN_OR_RETURN(snapshot.fit_stats.iterations, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(snapshot.fit_stats.final_change, reader.ReadDouble());
  CPA_ASSIGN_OR_RETURN(snapshot.fit_stats.converged, reader.ReadBool());
  CPA_ASSIGN_OR_RETURN(snapshot.fit_stats.prediction_seconds,
                       reader.ReadDouble());
  CPA_ASSIGN_OR_RETURN(snapshot.fit_stats.elbo_trace, reader.ReadDoubles());
  CPA_ASSIGN_OR_RETURN(snapshot.batches_seen, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(snapshot.answers_seen, reader.ReadSize());
  CPA_ASSIGN_OR_RETURN(snapshot.learning_rate, reader.ReadDouble());
  CPA_ASSIGN_OR_RETURN(snapshot.finalized, reader.ReadBool());
  return snapshot;
}

}  // namespace cpa
