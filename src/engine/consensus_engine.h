#ifndef CPA_ENGINE_CONSENSUS_ENGINE_H_
#define CPA_ENGINE_CONSENSUS_ENGINE_H_

/// \file consensus_engine.h
/// \brief The streaming inference session shared by every consensus method.
///
/// One `ConsensusEngine` instance is one session over one answer stream:
///
/// ```cpp
///   auto engine = EngineRegistry::Global().Open(config);   // Open
///   engine->Observe({&answers, plan.batches[b]});          // Observe*
///   auto snapshot = engine->Snapshot();                    // any time
///   auto final = engine->Finalize();                       // once, at end
/// ```
///
/// Offline methods (MV, EM, cBCC, CPA variants) run behind an
/// accumulate-then-refit adapter (`offline_engine.h`, `cpa_engines.h`):
/// `Snapshot` refits on everything observed so far, so mid-stream snapshots
/// are exactly the "offline re-run on the data so far" reference of Fig 6.
/// `CpaOnline` (Algorithm 2) plugs in natively via `CpaSviEngine` and never
/// refits. Either way callers see one lifecycle, which is what lets the
/// benches, examples and the eval harness switch methods by string name.

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "core/vi.h"
#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/matrix.h"
#include "util/status.h"

namespace cpa {

class CheckpointWriter;
class CheckpointReader;

/// \brief One batch of stream answers: flat indices into
/// `answers->answers()`. The matrix is the *stream*: it may hold answers
/// that have not arrived yet — engines only ever read the indices they have
/// been shown (no peeking), and every batch of a session must reference the
/// same matrix object.
struct AnswerBatch {
  const AnswerMatrix* answers = nullptr;
  std::span<const std::size_t> indices;
};

/// \brief Point-in-time view of a session's consensus. Cheap to take
/// between batches: online methods predict from their current state,
/// offline adapters refit only when new answers arrived since the last
/// snapshot.
///
/// Sessions publish snapshots as immutable shared values (`SharedSnapshot`
/// below): once `Snapshot()` hands one out it is never mutated, so any
/// number of readers — poll caches, wire responses, metric scans — hold
/// the same object without copying the predictions.
struct ConsensusSnapshot {
  /// Registry name of the method that produced the snapshot.
  std::string method;

  /// The deterministic assignment `d` so far; items without observed
  /// answers carry empty sets. Empty before the first non-empty batch.
  std::vector<LabelSet> predictions;

  /// Soft per-label scores (I × C); semantics are method specific. May be
  /// empty for methods without soft output.
  Matrix label_scores;

  /// Inference diagnostics of the fit behind this snapshot. For online
  /// methods `iterations` counts batches consumed.
  FitStats fit_stats;

  /// Monotone session counters at snapshot time.
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;

  /// ω_b of the most recent SVI step; 0 for offline methods.
  double learning_rate = 0.0;

  /// True for the snapshot returned by `Finalize()`.
  bool finalized = false;
};

/// \brief The immutable published form of a snapshot. Copying the handle
/// is a refcount bump; the snapshot body is never copied or mutated after
/// publication.
using SharedSnapshot = std::shared_ptr<const ConsensusSnapshot>;

/// \brief Interface of a streaming consensus session.
///
/// The base class owns the lifecycle invariants — one stream matrix per
/// session, monotone counters, no observation after `Finalize()` — so
/// concrete engines only implement `OnObserve` / `OnSnapshot`.
class ConsensusEngine {
 public:
  virtual ~ConsensusEngine() = default;

  ConsensusEngine(const ConsensusEngine&) = delete;
  ConsensusEngine& operator=(const ConsensusEngine&) = delete;

  /// Registry name of the method ("MV", "CPA-SVI", ...).
  std::string_view name() const { return name_; }

  /// Consumes one batch. Empty batches are a no-op (counters unchanged).
  /// Fails after `Finalize()`, on a null or foreign stream matrix, and on
  /// out-of-range indices.
  Status Observe(const AnswerBatch& batch);

  /// Current consensus as an immutable shared value. Before any answer
  /// arrived this returns an empty snapshot rather than failing, so pollers
  /// need no special bootstrap. Snapshots are cached at the base level:
  /// repeated calls with no intervening (non-empty) `Observe` return the
  /// same shared object — no rebuild, no copy.
  Result<SharedSnapshot> Snapshot();

  /// Ends the session and returns the final consensus. Idempotent: repeated
  /// calls return the same shared snapshot; `Observe` fails afterwards.
  Result<SharedSnapshot> Finalize();

  bool finalized() const { return finalized_; }
  std::size_t batches_seen() const { return batches_seen_; }
  std::size_t answers_seen() const { return answers_seen_; }

  /// Serializes the full engine state into an opaque versioned blob
  /// (engine/checkpoint.h). Restoring the blob into a freshly opened engine
  /// of the same method and continuing the stream is bit-identical to never
  /// having stopped. Engines that don't implement the hooks return
  /// `kUnimplemented`.
  Result<std::string> SaveState() const;

  /// Restores a `SaveState` blob into this engine. The engine must be
  /// freshly opened (nothing observed, not finalized); `stream` is the
  /// session's rebuilt answer stream and must be non-null iff the saved
  /// engine had bound one. The engine does not replay `Observe` — sufficient
  /// statistics come from the blob — so `stream` must already hold the
  /// answers the saved engine had seen, at the same indices.
  Status RestoreState(std::string_view state, const AnswerMatrix* stream);

 protected:
  explicit ConsensusEngine(std::string name) : name_(std::move(name)) {}

  /// Consumes validated, non-empty batch indices of `answers`.
  virtual Status OnObserve(const AnswerMatrix& answers,
                           std::span<const std::size_t> indices) = 0;

  /// Builds the snapshot body (predictions / scores / stats / rate); the
  /// base class stamps method name, counters and the finalized flag.
  /// Called only once a stream is bound — i.e. after at least one
  /// `Observe` call, which may have carried an empty batch, so `OnObserve`
  /// may not have run yet. Implementations must tolerate zero observed
  /// answers.
  virtual Result<ConsensusSnapshot> OnSnapshot(const AnswerMatrix& stream) = 0;

  /// The stream matrix bound by the first batch (nullptr before).
  const AnswerMatrix* stream() const { return stream_; }

  /// \name Checkpoint hooks
  ///
  /// `SaveState`/`RestoreState` frame the blob (magic, version, method
  /// name, base counters, cached/final snapshots) and delegate the
  /// method-specific sufficient statistics to these hooks. The default
  /// implementations refuse, so methods opt in explicitly.
  /// @{
  virtual Status OnSaveState(CheckpointWriter& writer) const;
  virtual Status OnRestoreState(CheckpointReader& reader);
  /// @}

 private:
  std::string name_;
  const AnswerMatrix* stream_ = nullptr;
  std::size_t batches_seen_ = 0;
  std::size_t answers_seen_ = 0;
  bool finalized_ = false;

  /// Base-level snapshot cache: valid while the session counters equal
  /// `cached_answers_`/`cached_batches_` (counters only move on non-empty
  /// Observe, and engine state only changes there too) and the stream
  /// binding is unchanged (an empty first batch binds without counting).
  SharedSnapshot cached_;
  std::size_t cached_batches_ = 0;
  std::size_t cached_answers_ = 0;
  const AnswerMatrix* cached_stream_ = nullptr;
  SharedSnapshot final_snapshot_;
};

/// Feeds every answer of `answers` to `engine` as one batch — the one-shot
/// (non-streaming) use of a session, shared by `CpaAggregator` and the
/// engine overload of `RunExperiment`.
Status ObserveAll(ConsensusEngine& engine, const AnswerMatrix& answers);

}  // namespace cpa

#endif  // CPA_ENGINE_CONSENSUS_ENGINE_H_
