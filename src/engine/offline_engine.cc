#include "engine/offline_engine.h"

#include <algorithm>
#include <utility>

#include "engine/checkpoint.h"

namespace cpa {

AccumulatingEngine::AccumulatingEngine(std::string name, std::size_t num_labels)
    : ConsensusEngine(std::move(name)), num_labels_(num_labels) {}

Status AccumulatingEngine::OnObserve(const AnswerMatrix& answers,
                                     std::span<const std::size_t> indices) {
  (void)answers;  // the refit reads through stream(); indices are validated
  seen_.insert(seen_.end(), indices.begin(), indices.end());
  dirty_ = true;
  return Status::OK();
}

Result<ConsensusSnapshot> AccumulatingEngine::OnSnapshot(const AnswerMatrix& stream) {
  // `!fitted_` covers the empty-stream corner: a session that only saw
  // empty batches still solves once (on the empty sub-matrix), matching a
  // direct Aggregate call on an all-empty matrix.
  if (dirty_ || !fitted_) {
    // Stream order (and uniqueness — a repeated index would otherwise make
    // the refit sub-matrix reject the duplicate cell) is what makes a
    // full-coverage refit identical to the original matrix. Sorting here,
    // on the refit path, keeps per-batch Observe O(batch).
    std::sort(seen_.begin(), seen_.end());
    seen_.erase(std::unique(seen_.begin(), seen_.end()), seen_.end());
    if (seen_.size() == stream.num_answers()) {
      // Full coverage: the sub-matrix would be an exact copy — solve on
      // the stream itself and skip the rebuild.
      CPA_ASSIGN_OR_RETURN(cached_, Refit(stream));
    } else {
      const AnswerMatrix accumulated = stream.Subset(seen_);
      CPA_ASSIGN_OR_RETURN(cached_, Refit(accumulated));
    }
    fitted_ = true;
    dirty_ = false;
  }
  return cached_;
}

Status AccumulatingEngine::OnSaveState(CheckpointWriter& writer) const {
  writer.WriteU64(num_labels_);
  writer.WriteSizes(seen_);
  writer.WriteBool(fitted_);
  writer.WriteBool(dirty_);
  // The refit cache only has meaning once a fit ran.
  if (fitted_) WriteConsensusSnapshot(writer, cached_);
  return Status::OK();
}

Status AccumulatingEngine::OnRestoreState(CheckpointReader& reader) {
  CPA_ASSIGN_OR_RETURN(const std::size_t labels, reader.ReadSize());
  if (labels != num_labels_) {
    return Status::InvalidArgument(
        "checkpoint num_labels does not match this engine");
  }
  CPA_ASSIGN_OR_RETURN(seen_, reader.ReadSizes());
  CPA_ASSIGN_OR_RETURN(fitted_, reader.ReadBool());
  CPA_ASSIGN_OR_RETURN(dirty_, reader.ReadBool());
  if (fitted_) {
    CPA_ASSIGN_OR_RETURN(cached_, ReadConsensusSnapshot(reader));
  } else {
    cached_ = ConsensusSnapshot();
  }
  return Status::OK();
}

OfflineEngine::OfflineEngine(std::string name, std::unique_ptr<Aggregator> aggregator,
                             std::size_t num_labels)
    : AccumulatingEngine(std::move(name), num_labels),
      aggregator_(std::move(aggregator)) {}

Result<ConsensusSnapshot> OfflineEngine::Refit(const AnswerMatrix& accumulated) {
  CPA_ASSIGN_OR_RETURN(AggregationResult result,
                       aggregator_->Aggregate(accumulated, num_labels()));
  ConsensusSnapshot snapshot;
  snapshot.predictions = std::move(result.predictions);
  snapshot.label_scores = std::move(result.label_scores);
  snapshot.fit_stats.iterations = result.iterations;
  return snapshot;
}

}  // namespace cpa
