#ifndef CPA_ENGINE_OFFLINE_ENGINE_H_
#define CPA_ENGINE_OFFLINE_ENGINE_H_

/// \file offline_engine.h
/// \brief Accumulate-then-refit adapters: any offline `Aggregator` as a
/// streaming `ConsensusEngine`.
///
/// Observed batch indices are accumulated; `Snapshot()` re-solves on the
/// sub-matrix of everything seen so far (the "offline re-run on the data so
/// far" reference of Fig 6) and caches the result, so repeated snapshots
/// without new answers are free. Accumulated indices are refit in stream
/// order; once a session has observed every answer of the stream the refit
/// runs on the stream matrix itself, so `Finalize()` equals a direct
/// `Aggregate()` call.

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "baselines/aggregator.h"
#include "engine/consensus_engine.h"

namespace cpa {

/// \brief Shared accumulate + dirty-refit machinery. Concrete engines
/// implement `Refit` over the accumulated sub-matrix.
class AccumulatingEngine : public ConsensusEngine {
 protected:
  AccumulatingEngine(std::string name, std::size_t num_labels);

  Status OnObserve(const AnswerMatrix& answers,
                   std::span<const std::size_t> indices) final;
  Result<ConsensusSnapshot> OnSnapshot(const AnswerMatrix& stream) final;

  /// Solves on everything observed so far. `accumulated` preserves the
  /// stream's answer order and dimensions.
  virtual Result<ConsensusSnapshot> Refit(const AnswerMatrix& accumulated) = 0;

  /// Checkpointing: the accumulated index set plus the refit cache. Any
  /// method-specific solver state is deliberately not serialized — refits
  /// are deterministic, so the next dirty snapshot rebuilds it exactly.
  Status OnSaveState(CheckpointWriter& writer) const override;
  Status OnRestoreState(CheckpointReader& reader) override;

  std::size_t num_labels() const { return num_labels_; }

 private:
  std::size_t num_labels_;
  std::vector<std::size_t> seen_;  // sorted, deduplicated after each batch
  bool fitted_ = false;
  bool dirty_ = false;
  ConsensusSnapshot cached_;
};

/// \brief The generic adapter: wraps any `Aggregator` (MV, EM, cBCC, or a
/// caller-provided method) as a `ConsensusEngine`.
class OfflineEngine : public AccumulatingEngine {
 public:
  /// `name` is the session/registry name; it may differ from
  /// `aggregator->name()` (e.g. a registry alias).
  OfflineEngine(std::string name, std::unique_ptr<Aggregator> aggregator,
                std::size_t num_labels);

  /// The wrapped method (for diagnostics).
  Aggregator& aggregator() { return *aggregator_; }

 protected:
  Result<ConsensusSnapshot> Refit(const AnswerMatrix& accumulated) override;

 private:
  std::unique_ptr<Aggregator> aggregator_;
};

}  // namespace cpa

#endif  // CPA_ENGINE_OFFLINE_ENGINE_H_
