#ifndef CPA_ENGINE_ENGINE_REGISTRY_H_
#define CPA_ENGINE_ENGINE_REGISTRY_H_

/// \file engine_registry.h
/// \brief String-keyed factory registry for consensus methods.
///
/// `EngineRegistry::Global()` comes pre-loaded with the paper's line-up
/// ("MV", "EM", "cBCC", "CPA", "CPA-NoZ", "CPA-NoL", "CPA-SVI"); every
/// `Open` call constructs a fresh, independent session from one
/// `EngineConfig`. New methods self-register from any translation unit:
///
/// ```cpp
///   static cpa::EngineRegistrar register_my_method(
///       "MyMethod", [](const cpa::EngineConfig& config) { ... });
/// ```
///
/// The registry is how benches, examples and services enumerate and
/// construct methods (it replaced the seed's ad-hoc factory map, which has
/// been deleted).

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "engine/consensus_engine.h"
#include "engine/engine_config.h"
#include "util/status.h"

namespace cpa {

/// \brief Thread-safe name → factory map.
class EngineRegistry {
 public:
  /// Builds a fresh session for `config` (never a shared instance).
  using Factory =
      std::function<Result<std::unique_ptr<ConsensusEngine>>(const EngineConfig&)>;

  /// The process-wide registry, with the built-in methods installed.
  static EngineRegistry& Global();

  EngineRegistry() = default;
  EngineRegistry(const EngineRegistry&) = delete;
  EngineRegistry& operator=(const EngineRegistry&) = delete;

  /// Registers a method; duplicate names fail (first registration wins).
  Status Register(std::string name, Factory factory);

  /// True when `name` is a registered method.
  bool Has(std::string_view name) const;

  /// All registered method names, sorted.
  std::vector<std::string> MethodNames() const;

  /// Validates `config` and constructs a fresh session of
  /// `config.method`. Unknown names return NotFound listing what is
  /// registered.
  Result<std::unique_ptr<ConsensusEngine>> Open(const EngineConfig& config) const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, Factory, std::less<>> factories_;
};

/// \brief Static-initialization helper: registers into `Global()` at load
/// time of the defining translation unit.
class EngineRegistrar {
 public:
  EngineRegistrar(std::string name, EngineRegistry::Factory factory);
};

}  // namespace cpa

#endif  // CPA_ENGINE_ENGINE_REGISTRY_H_
