#include "engine/engine_registry.h"

#include "engine/cpa_engines.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace cpa {

EngineRegistry& EngineRegistry::Global() {
  // The built-ins are installed here rather than by static initializers in
  // cpa_engines.cc: libcpa is a static archive, and an object file whose
  // only job is registration would be dropped by the linker. The explicit
  // call also anchors that object file for user code linking the archive.
  static EngineRegistry* registry = [] {
    auto* r = new EngineRegistry();
    RegisterBuiltinEngines(*r);
    return r;
  }();
  return *registry;
}

Status EngineRegistry::Register(std::string name, Factory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("engine method name must not be empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument(
        StrFormat("engine factory for '%s' must not be null", name.c_str()));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  const auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  if (!inserted) {
    return Status::FailedPrecondition(
        StrFormat("engine method '%s' is already registered", it->first.c_str()));
  }
  return Status::OK();
}

bool EngineRegistry::Has(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return factories_.find(name) != factories_.end();
}

std::vector<std::string> EngineRegistry::MethodNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) {
    names.push_back(name);
  }
  return names;  // std::map iteration is already sorted
}

Result<std::unique_ptr<ConsensusEngine>> EngineRegistry::Open(
    const EngineConfig& config) const {
  CPA_RETURN_NOT_OK(config.Validate());
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = factories_.find(config.method);
    if (it == factories_.end()) {
      std::string known;
      for (const auto& [name, unused] : factories_) {
        known += known.empty() ? name : ", " + name;
      }
      return Status::NotFound(
          StrFormat("unknown consensus method '%s' (registered: %s)",
                    config.method.c_str(), known.c_str()));
    }
    factory = it->second;  // copy so the factory runs outside the lock
  }
  CPA_ASSIGN_OR_RETURN(std::unique_ptr<ConsensusEngine> engine, factory(config));
  if (engine == nullptr) {
    return Status::Internal(StrFormat("factory for '%s' returned a null engine",
                                      config.method.c_str()));
  }
  return engine;
}

EngineRegistrar::EngineRegistrar(std::string name, EngineRegistry::Factory factory) {
  const Status status =
      EngineRegistry::Global().Register(std::move(name), std::move(factory));
  CPA_CHECK(status.ok()) << status.ToString();
}

}  // namespace cpa
