#include "engine/engine_config.h"

#include <cmath>

#include "util/string_utils.h"

namespace cpa {
namespace {

// FromJson helpers: absent keys keep the caller's default; present keys
// must carry the right JSON kind.
Status ReadSize(const JsonValue& object, const char* key, std::size_t* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::OK();
  if (value->kind() != JsonValue::Kind::kNumber || value->number_value() < 0.0 ||
      std::floor(value->number_value()) != value->number_value()) {
    return Status::InvalidArgument(
        StrFormat("config field '%s' must be a non-negative integer", key));
  }
  *out = static_cast<std::size_t>(value->number_value());
  return Status::OK();
}

Status ReadDouble(const JsonValue& object, const char* key, double* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::OK();
  if (value->kind() != JsonValue::Kind::kNumber) {
    return Status::InvalidArgument(
        StrFormat("config field '%s' must be a number", key));
  }
  *out = value->number_value();
  return Status::OK();
}

Status ReadBool(const JsonValue& object, const char* key, bool* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::OK();
  if (value->kind() != JsonValue::Kind::kBool) {
    return Status::InvalidArgument(
        StrFormat("config field '%s' must be a boolean", key));
  }
  *out = value->bool_value();
  return Status::OK();
}

Status ReadString(const JsonValue& object, const char* key, std::string* out) {
  const JsonValue* value = object.Find(key);
  if (value == nullptr) return Status::OK();
  if (value->kind() != JsonValue::Kind::kString) {
    return Status::InvalidArgument(
        StrFormat("config field '%s' must be a string", key));
  }
  *out = value->string_value();
  return Status::OK();
}

JsonValue Num(double value) { return JsonValue(value); }
JsonValue Num(std::size_t value) { return JsonValue(static_cast<double>(value)); }

}  // namespace

EngineConfig EngineConfig::ForDataset(std::string method, const Dataset& dataset) {
  EngineConfig config;
  config.method = std::move(method);
  config.num_items = dataset.num_items();
  config.num_workers = dataset.num_workers();
  config.num_labels = dataset.num_labels;
  config.cpa = CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
  return config;
}

Status EngineConfig::Validate() const {
  if (method.empty()) {
    return Status::InvalidArgument("EngineConfig.method must not be empty");
  }
  if (num_labels == 0) {
    return Status::InvalidArgument(
        "EngineConfig.num_labels must be positive (the label universe C)");
  }
  if (num_threads == 0) {
    return Status::InvalidArgument(
        "EngineConfig.num_threads must be positive (1 = sequential)");
  }
  return Status::OK();
}

JsonValue EngineConfig::ToJson() const {
  JsonValue::Object cpa_object;
  cpa_object["max_communities"] = Num(cpa.max_communities);
  cpa_object["max_clusters"] = Num(cpa.max_clusters);
  cpa_object["alpha"] = Num(cpa.alpha);
  cpa_object["epsilon"] = Num(cpa.epsilon);
  cpa_object["lambda0"] = Num(cpa.lambda0);
  cpa_object["zeta0"] = Num(cpa.zeta0);
  cpa_object["max_iterations"] = Num(cpa.max_iterations);
  cpa_object["tolerance"] = Num(cpa.tolerance);
  cpa_object["seed"] = Num(static_cast<double>(cpa.seed));

  JsonValue::Object svi_object;
  svi_object["workers_per_batch"] = Num(svi.workers_per_batch);
  svi_object["forgetting_rate"] = Num(svi.forgetting_rate);
  svi_object["exact_local_phi"] = JsonValue(svi.exact_local_phi);
  svi_object["reinforcement_rounds"] = Num(svi.reinforcement_rounds);

  JsonValue::Object majority_object;
  majority_object["threshold"] = Num(majority.threshold);
  majority_object["fallback_to_top_label"] =
      JsonValue(majority.fallback_to_top_label);

  JsonValue::Object em_object;
  em_object["max_iterations"] = Num(em.max_iterations);
  em_object["tolerance"] = Num(em.tolerance);
  em_object["smoothing"] = Num(em.smoothing);
  em_object["threshold"] = Num(em.threshold);
  em_object["use_mislabeling_cost"] = JsonValue(em.use_mislabeling_cost);

  JsonValue::Object cbcc_object;
  cbcc_object["num_communities"] = Num(cbcc.num_communities);
  cbcc_object["max_iterations"] = Num(cbcc.max_iterations);
  cbcc_object["tolerance"] = Num(cbcc.tolerance);
  cbcc_object["threshold"] = Num(cbcc.threshold);

  JsonValue::Object config;
  config["method"] = JsonValue(method);
  config["num_items"] = Num(num_items);
  config["num_workers"] = Num(num_workers);
  config["num_labels"] = Num(num_labels);
  config["num_threads"] = Num(num_threads);
  config["cpa"] = JsonValue(std::move(cpa_object));
  config["svi"] = JsonValue(std::move(svi_object));
  config["majority"] = JsonValue(std::move(majority_object));
  config["em"] = JsonValue(std::move(em_object));
  config["cbcc"] = JsonValue(std::move(cbcc_object));
  return JsonValue(std::move(config));
}

Result<EngineConfig> EngineConfig::FromJson(const JsonValue& json) {
  if (json.kind() != JsonValue::Kind::kObject) {
    return Status::InvalidArgument("engine config must be a JSON object");
  }
  EngineConfig config;
  CPA_RETURN_NOT_OK(ReadString(json, "method", &config.method));
  CPA_RETURN_NOT_OK(ReadSize(json, "num_items", &config.num_items));
  CPA_RETURN_NOT_OK(ReadSize(json, "num_workers", &config.num_workers));
  CPA_RETURN_NOT_OK(ReadSize(json, "num_labels", &config.num_labels));
  CPA_RETURN_NOT_OK(ReadSize(json, "num_threads", &config.num_threads));

  if (const JsonValue* cpa_object = json.Find("cpa")) {
    CPA_RETURN_NOT_OK(
        ReadSize(*cpa_object, "max_communities", &config.cpa.max_communities));
    CPA_RETURN_NOT_OK(
        ReadSize(*cpa_object, "max_clusters", &config.cpa.max_clusters));
    CPA_RETURN_NOT_OK(ReadDouble(*cpa_object, "alpha", &config.cpa.alpha));
    CPA_RETURN_NOT_OK(ReadDouble(*cpa_object, "epsilon", &config.cpa.epsilon));
    CPA_RETURN_NOT_OK(ReadDouble(*cpa_object, "lambda0", &config.cpa.lambda0));
    CPA_RETURN_NOT_OK(ReadDouble(*cpa_object, "zeta0", &config.cpa.zeta0));
    CPA_RETURN_NOT_OK(
        ReadSize(*cpa_object, "max_iterations", &config.cpa.max_iterations));
    CPA_RETURN_NOT_OK(ReadDouble(*cpa_object, "tolerance", &config.cpa.tolerance));
    std::size_t seed = static_cast<std::size_t>(config.cpa.seed);
    CPA_RETURN_NOT_OK(ReadSize(*cpa_object, "seed", &seed));
    config.cpa.seed = seed;
  }
  if (const JsonValue* svi_object = json.Find("svi")) {
    CPA_RETURN_NOT_OK(ReadSize(*svi_object, "workers_per_batch",
                               &config.svi.workers_per_batch));
    CPA_RETURN_NOT_OK(ReadDouble(*svi_object, "forgetting_rate",
                                 &config.svi.forgetting_rate));
    CPA_RETURN_NOT_OK(
        ReadBool(*svi_object, "exact_local_phi", &config.svi.exact_local_phi));
    CPA_RETURN_NOT_OK(ReadSize(*svi_object, "reinforcement_rounds",
                               &config.svi.reinforcement_rounds));
  }
  if (const JsonValue* majority_object = json.Find("majority")) {
    CPA_RETURN_NOT_OK(
        ReadDouble(*majority_object, "threshold", &config.majority.threshold));
    CPA_RETURN_NOT_OK(ReadBool(*majority_object, "fallback_to_top_label",
                               &config.majority.fallback_to_top_label));
  }
  if (const JsonValue* em_object = json.Find("em")) {
    CPA_RETURN_NOT_OK(
        ReadSize(*em_object, "max_iterations", &config.em.max_iterations));
    CPA_RETURN_NOT_OK(ReadDouble(*em_object, "tolerance", &config.em.tolerance));
    CPA_RETURN_NOT_OK(ReadDouble(*em_object, "smoothing", &config.em.smoothing));
    CPA_RETURN_NOT_OK(ReadDouble(*em_object, "threshold", &config.em.threshold));
    CPA_RETURN_NOT_OK(ReadBool(*em_object, "use_mislabeling_cost",
                               &config.em.use_mislabeling_cost));
  }
  if (const JsonValue* cbcc_object = json.Find("cbcc")) {
    CPA_RETURN_NOT_OK(
        ReadSize(*cbcc_object, "num_communities", &config.cbcc.num_communities));
    CPA_RETURN_NOT_OK(
        ReadSize(*cbcc_object, "max_iterations", &config.cbcc.max_iterations));
    CPA_RETURN_NOT_OK(ReadDouble(*cbcc_object, "tolerance", &config.cbcc.tolerance));
    CPA_RETURN_NOT_OK(ReadDouble(*cbcc_object, "threshold", &config.cbcc.threshold));
  }
  return config;
}

Result<EngineConfig> EngineConfig::WithFlags(const Flags& flags) const {
  EngineConfig config = *this;
  config.method = flags.GetString("method", config.method);
  // Dimension/count flags must stay non-negative: a raw size_t cast would
  // wrap "-1" to 2^64-1 and sail past Validate into an absurd allocation.
  Status negative = Status::OK();
  const auto size_flag = [&flags, &negative](std::string_view name,
                                             std::size_t current) {
    const long long value =
        flags.GetInt(name, static_cast<long long>(current));
    if (value < 0 && negative.ok()) {
      negative = Status::InvalidArgument(
          StrFormat("--%s must be non-negative, got %lld",
                    std::string(name).c_str(), value));
    }
    return value < 0 ? current : static_cast<std::size_t>(value);
  };
  config.num_items = size_flag("num-items", config.num_items);
  config.num_workers = size_flag("num-workers", config.num_workers);
  config.num_labels = size_flag("num-labels", config.num_labels);
  config.num_threads = size_flag("num-threads", config.num_threads);
  config.cpa.max_iterations = size_flag("cpa-iterations", config.cpa.max_iterations);
  config.cpa.max_communities =
      size_flag("max-communities", config.cpa.max_communities);
  config.cpa.max_clusters = size_flag("max-clusters", config.cpa.max_clusters);
  config.svi.workers_per_batch =
      size_flag("workers-per-batch", config.svi.workers_per_batch);
  CPA_RETURN_NOT_OK(negative);
  config.svi.forgetting_rate =
      flags.GetDouble("forgetting-rate", config.svi.forgetting_rate);
  config.majority.threshold =
      flags.GetDouble("mv-threshold", config.majority.threshold);
  CPA_RETURN_NOT_OK(config.Validate());
  return config;
}

}  // namespace cpa
