#include "eval/experiment.h"

#include "baselines/cbcc.h"
#include "baselines/dawid_skene.h"
#include "baselines/majority_vote.h"
#include "core/cpa.h"
#include "util/stopwatch.h"

namespace cpa {

Result<ExperimentResult> RunExperiment(Aggregator& aggregator, const Dataset& dataset) {
  if (!dataset.has_ground_truth()) {
    return Status::FailedPrecondition("experiment dataset needs ground truth");
  }
  Stopwatch stopwatch;
  CPA_ASSIGN_OR_RETURN(AggregationResult result,
                       aggregator.Aggregate(dataset.answers, dataset.num_labels));
  ExperimentResult experiment;
  experiment.seconds = stopwatch.ElapsedSeconds();
  experiment.iterations = result.iterations;
  experiment.metrics = ComputeSetMetrics(result.predictions, dataset.ground_truth);
  return experiment;
}

std::map<std::string, AggregatorFactory> PaperAggregators(std::size_t cpa_iterations) {
  std::map<std::string, AggregatorFactory> factories;
  factories["MV"] = [](const Dataset&) { return std::make_unique<MajorityVote>(); };
  factories["EM"] = [](const Dataset&) { return std::make_unique<DawidSkene>(); };
  factories["cBCC"] = [](const Dataset&) { return std::make_unique<Cbcc>(); };
  factories["CPA"] = [cpa_iterations](const Dataset& dataset) {
    CpaOptions options =
        CpaOptions::Recommended(dataset.num_items(), dataset.num_labels);
    options.max_iterations = cpa_iterations;
    return std::make_unique<CpaAggregator>(options);
  };
  return factories;
}

}  // namespace cpa
