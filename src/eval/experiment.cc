#include "eval/experiment.h"

#include <memory>

#include "engine/engine_registry.h"
#include "util/stopwatch.h"

namespace cpa {
namespace {

Status RequireFreshSession(const ConsensusEngine& engine, const Dataset& dataset) {
  if (!dataset.has_ground_truth()) {
    return Status::FailedPrecondition("experiment dataset needs ground truth");
  }
  if (engine.finalized() || engine.answers_seen() > 0) {
    return Status::FailedPrecondition(
        "experiment engines must be freshly opened sessions");
  }
  return Status::OK();
}

}  // namespace

Result<ExperimentResult> RunExperiment(Aggregator& aggregator, const Dataset& dataset) {
  if (!dataset.has_ground_truth()) {
    return Status::FailedPrecondition("experiment dataset needs ground truth");
  }
  Stopwatch stopwatch;
  CPA_ASSIGN_OR_RETURN(AggregationResult result,
                       aggregator.Aggregate(dataset.answers, dataset.num_labels));
  ExperimentResult experiment;
  experiment.seconds = stopwatch.ElapsedSeconds();
  experiment.iterations = result.iterations;
  experiment.metrics = ComputeSetMetrics(result.predictions, dataset.ground_truth);
  return experiment;
}

Result<ExperimentResult> RunExperiment(ConsensusEngine& engine, const Dataset& dataset) {
  CPA_RETURN_NOT_OK(RequireFreshSession(engine, dataset));
  Stopwatch stopwatch;
  CPA_RETURN_NOT_OK(ObserveAll(engine, dataset.answers));
  CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, engine.Finalize());
  ExperimentResult experiment;
  experiment.seconds = stopwatch.ElapsedSeconds();
  experiment.iterations = snapshot->fit_stats.iterations;
  experiment.prediction_seconds = snapshot->fit_stats.prediction_seconds;
  experiment.metrics = ComputeSetMetrics(snapshot->predictions, dataset.ground_truth);
  return experiment;
}

Result<StreamingExperimentResult> RunStreamingExperiment(ConsensusEngine& engine,
                                                         const Dataset& dataset,
                                                         const BatchPlan& plan,
                                                         bool score_each_batch) {
  CPA_RETURN_NOT_OK(RequireFreshSession(engine, dataset));
  StreamingExperimentResult result;
  Stopwatch stopwatch;
  for (const std::vector<std::size_t>& batch : plan.batches) {
    CPA_RETURN_NOT_OK(engine.Observe({&dataset.answers, batch}));
    if (!score_each_batch) continue;
    CPA_ASSIGN_OR_RETURN(SharedSnapshot snapshot, engine.Snapshot());
    StreamingStepResult step;
    step.metrics = ComputeSetMetrics(snapshot->predictions, dataset.ground_truth);
    step.seconds = stopwatch.ElapsedSeconds();
    step.batches_seen = snapshot->batches_seen;
    step.answers_seen = snapshot->answers_seen;
    step.learning_rate = snapshot->learning_rate;
    result.steps.push_back(std::move(step));
  }
  CPA_ASSIGN_OR_RETURN(SharedSnapshot final_snapshot, engine.Finalize());
  result.final_result.seconds = stopwatch.ElapsedSeconds();
  result.final_result.iterations = final_snapshot->fit_stats.iterations;
  result.final_result.prediction_seconds =
      final_snapshot->fit_stats.prediction_seconds;
  result.final_result.metrics =
      ComputeSetMetrics(final_snapshot->predictions, dataset.ground_truth);
  return result;
}

Result<ExperimentResult> RunExperiment(const EngineConfig& config,
                                       const Dataset& dataset) {
  CPA_ASSIGN_OR_RETURN(std::unique_ptr<ConsensusEngine> engine,
                       EngineRegistry::Global().Open(config));
  return RunExperiment(*engine, dataset);
}

Result<StreamingExperimentResult> RunStreamingExperiment(const EngineConfig& config,
                                                         const Dataset& dataset,
                                                         const BatchPlan& plan,
                                                         bool score_each_batch) {
  CPA_ASSIGN_OR_RETURN(std::unique_ptr<ConsensusEngine> engine,
                       EngineRegistry::Global().Open(config));
  return RunStreamingExperiment(*engine, dataset, plan, score_each_batch);
}

std::vector<std::string> PaperMethodNames() { return {"MV", "EM", "cBCC", "CPA"}; }

}  // namespace cpa
