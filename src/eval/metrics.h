#ifndef CPA_EVAL_METRICS_H_
#define CPA_EVAL_METRICS_H_

/// \file metrics.h
/// \brief Evaluation metrics of §5.1.
///
/// Partial-agreement results can be partially correct, so the paper uses
/// set-based precision and recall per item: `P_i = |Y_i ∩ Y*_i| / |Y*_i|`
/// (correct predicted labels over predicted labels) and
/// `R_i = |Y_i ∩ Y*_i| / |Y_i|` (correct predicted labels over true
/// labels), averaged over items. Worker quality is characterised by
/// per-label sensitivity/specificity (Fig 9, Fig 10).

#include <cstddef>
#include <vector>

#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "data/types.h"

namespace cpa {

/// \brief Averaged set-based metrics over a dataset.
struct SetMetrics {
  double precision = 0.0;
  double recall = 0.0;

  /// Items included in the averages (non-empty truth).
  std::size_t evaluated_items = 0;

  /// Harmonic mean of the averaged precision and recall.
  double F1() const {
    const double sum = precision + recall;
    return sum > 0.0 ? 2.0 * precision * recall / sum : 0.0;
  }
};

/// \brief Computes §5.1's averaged precision/recall.
///
/// Items with empty ground truth are skipped (every paper item carries at
/// least one true label). An empty prediction for a non-empty truth scores
/// precision 0 (nothing correct was asserted).
SetMetrics ComputeSetMetrics(const std::vector<LabelSet>& predictions,
                             const std::vector<LabelSet>& ground_truth);

/// \brief Per-item precision/recall (exposed for tests and diagnostics).
struct ItemMetrics {
  double precision = 0.0;
  double recall = 0.0;
};
ItemMetrics ComputeItemMetrics(const LabelSet& prediction, const LabelSet& truth);

/// \brief Two-coin characterisation of one worker for one label (or for
/// all labels pooled): sensitivity = TP/(TP+FN), specificity = TN/(TN+FP),
/// counted over the worker's answered items.
struct WorkerLabelStats {
  WorkerId worker = 0;
  double sensitivity = 0.0;
  double specificity = 0.0;
  std::size_t positives = 0;  ///< answered items where the label is true
  std::size_t negatives = 0;  ///< answered items where the label is false
};

/// Per-worker stats for one label; workers without answered items carrying
/// the label (positives == 0) report sensitivity 0 and are flagged by the
/// counts. Only workers with at least one answer are returned.
std::vector<WorkerLabelStats> ComputeWorkerLabelStats(
    const AnswerMatrix& answers, const std::vector<LabelSet>& ground_truth,
    LabelId label);

/// Pooled over all labels (the Fig 10 scatter).
std::vector<WorkerLabelStats> ComputeWorkerOverallStats(
    const AnswerMatrix& answers, const std::vector<LabelSet>& ground_truth,
    std::size_t num_labels);

}  // namespace cpa

#endif  // CPA_EVAL_METRICS_H_
