#include "eval/metrics.h"

#include "util/logging.h"

namespace cpa {

ItemMetrics ComputeItemMetrics(const LabelSet& prediction, const LabelSet& truth) {
  ItemMetrics metrics;
  const double intersection =
      static_cast<double>(prediction.IntersectionSize(truth));
  metrics.precision =
      prediction.empty()
          ? (truth.empty() ? 1.0 : 0.0)
          : intersection / static_cast<double>(prediction.size());
  metrics.recall =
      truth.empty() ? 1.0 : intersection / static_cast<double>(truth.size());
  return metrics;
}

SetMetrics ComputeSetMetrics(const std::vector<LabelSet>& predictions,
                             const std::vector<LabelSet>& ground_truth) {
  CPA_CHECK_EQ(predictions.size(), ground_truth.size());
  SetMetrics metrics;
  double precision_sum = 0.0;
  double recall_sum = 0.0;
  for (std::size_t i = 0; i < ground_truth.size(); ++i) {
    if (ground_truth[i].empty()) continue;
    const ItemMetrics item = ComputeItemMetrics(predictions[i], ground_truth[i]);
    precision_sum += item.precision;
    recall_sum += item.recall;
    ++metrics.evaluated_items;
  }
  if (metrics.evaluated_items > 0) {
    metrics.precision = precision_sum / static_cast<double>(metrics.evaluated_items);
    metrics.recall = recall_sum / static_cast<double>(metrics.evaluated_items);
  }
  return metrics;
}

namespace {

struct Counts {
  double tp = 0.0;
  double fn = 0.0;
  double tn = 0.0;
  double fp = 0.0;
  bool answered = false;
};

std::vector<WorkerLabelStats> ToStats(const std::vector<Counts>& counts) {
  std::vector<WorkerLabelStats> stats;
  for (WorkerId u = 0; u < counts.size(); ++u) {
    const Counts& c = counts[u];
    if (!c.answered) continue;
    WorkerLabelStats s;
    s.worker = u;
    s.positives = static_cast<std::size_t>(c.tp + c.fn);
    s.negatives = static_cast<std::size_t>(c.tn + c.fp);
    s.sensitivity = c.tp + c.fn > 0.0 ? c.tp / (c.tp + c.fn) : 0.0;
    s.specificity = c.tn + c.fp > 0.0 ? c.tn / (c.tn + c.fp) : 0.0;
    stats.push_back(s);
  }
  return stats;
}

}  // namespace

std::vector<WorkerLabelStats> ComputeWorkerLabelStats(
    const AnswerMatrix& answers, const std::vector<LabelSet>& ground_truth,
    LabelId label) {
  CPA_CHECK_EQ(ground_truth.size(), answers.num_items());
  std::vector<Counts> counts(answers.num_workers());
  for (const Answer& a : answers.answers()) {
    Counts& c = counts[a.worker];
    c.answered = true;
    const bool is_true = ground_truth[a.item].Contains(label);
    const bool voted = a.labels.Contains(label);
    if (is_true) {
      (voted ? c.tp : c.fn) += 1.0;
    } else {
      (voted ? c.fp : c.tn) += 1.0;
    }
  }
  return ToStats(counts);
}

std::vector<WorkerLabelStats> ComputeWorkerOverallStats(
    const AnswerMatrix& answers, const std::vector<LabelSet>& ground_truth,
    std::size_t num_labels) {
  CPA_CHECK_EQ(ground_truth.size(), answers.num_items());
  std::vector<Counts> counts(answers.num_workers());
  for (const Answer& a : answers.answers()) {
    Counts& c = counts[a.worker];
    c.answered = true;
    const LabelSet& truth = ground_truth[a.item];
    const double tp = static_cast<double>(a.labels.IntersectionSize(truth));
    c.tp += tp;
    c.fn += static_cast<double>(truth.size()) - tp;
    const double fp = static_cast<double>(a.labels.size()) - tp;
    c.fp += fp;
    c.tn += static_cast<double>(num_labels) - static_cast<double>(truth.size()) - fp;
  }
  return ToStats(counts);
}

}  // namespace cpa
