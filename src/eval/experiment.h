#ifndef CPA_EVAL_EXPERIMENT_H_
#define CPA_EVAL_EXPERIMENT_H_

/// \file experiment.h
/// \brief Uniform "run a method on a dataset, score it, time it" harness
/// used by the benches.
///
/// The primary entry point is the engine layer: construct sessions from an
/// `EngineConfig` via `EngineRegistry::Global()` (engine/engine_registry.h)
/// and drive them with `RunExperiment(ConsensusEngine&, ...)` for one-shot
/// runs or `RunStreamingExperiment` for batch-by-batch arrival curves. The
/// `Aggregator` overload and the `PaperAggregators` factory map are the
/// legacy pre-engine API; `PaperAggregators` is deprecated — use
/// `EngineRegistry::Global().MethodNames()` / `Open` instead.

#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "baselines/aggregator.h"
#include "data/dataset.h"
#include "engine/consensus_engine.h"
#include "eval/metrics.h"
#include "simulation/perturbations.h"
#include "util/status.h"

namespace cpa {

/// \brief Outcome of one aggregation run.
struct ExperimentResult {
  SetMetrics metrics;
  double seconds = 0.0;
  std::size_t iterations = 0;
};

/// Runs `aggregator` on `dataset` (answers only — never the truth) and
/// scores the predictions against the dataset's ground truth.
Result<ExperimentResult> RunExperiment(Aggregator& aggregator, const Dataset& dataset);

/// Engine-session one-shot: feeds every answer of `dataset` to `engine` as
/// a single batch, finalizes, and scores the final consensus. The engine
/// must be freshly opened (nothing observed, not finalized).
Result<ExperimentResult> RunExperiment(ConsensusEngine& engine, const Dataset& dataset);

/// \brief One scored snapshot of a streaming run.
struct StreamingStepResult {
  SetMetrics metrics;

  /// Seconds since the stream started (cumulative, includes snapshot cost).
  double seconds = 0.0;

  /// Session counters at snapshot time.
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;

  /// ω_b of the step (0 for offline adapters).
  double learning_rate = 0.0;
};

/// \brief Outcome of a streaming run: optional per-batch curve + final.
struct StreamingExperimentResult {
  /// Scored snapshot after each batch (empty when `score_each_batch` is
  /// false — final-only runs skip the intermediate refit/predict cost).
  std::vector<StreamingStepResult> steps;

  /// Scored `Finalize()` consensus, timed over the whole stream.
  ExperimentResult final_result;
};

/// Streams `plan`'s batches of `dataset.answers` into `engine` (answers
/// only — never the truth), scoring a `Snapshot()` after each batch when
/// `score_each_batch` is set, then finalizes and scores. The engine must be
/// freshly opened; drive prefixes by passing a plan holding only the
/// first k batches.
Result<StreamingExperimentResult> RunStreamingExperiment(ConsensusEngine& engine,
                                                         const Dataset& dataset,
                                                         const BatchPlan& plan,
                                                         bool score_each_batch = true);

/// \brief Factory registry for the aggregators the paper compares. Each
/// factory builds a fresh aggregator sized for the given dataset.
///
/// \deprecated Superseded by `EngineRegistry::Global()` (which also covers
/// the CPA ablation variants and the online learner, and constructs
/// sessions from a serializable `EngineConfig`). Kept while pre-engine
/// benches migrate; new callers should not use it.
using AggregatorFactory = std::function<std::unique_ptr<Aggregator>(const Dataset&)>;

/// The paper's §5.2 line-up: MV, EM (Dawid–Skene), cBCC and CPA.
/// `cpa_iterations` caps CPA's sweeps (benches trade a little accuracy for
/// sweep time).
///
/// \deprecated See `AggregatorFactory`.
std::map<std::string, AggregatorFactory> PaperAggregators(
    std::size_t cpa_iterations = 30);

}  // namespace cpa

#endif  // CPA_EVAL_EXPERIMENT_H_
