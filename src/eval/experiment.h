#ifndef CPA_EVAL_EXPERIMENT_H_
#define CPA_EVAL_EXPERIMENT_H_

/// \file experiment.h
/// \brief Uniform "run a method on a dataset, score it, time it" harness
/// used by the benches.
///
/// The primary entry point is the engine layer: construct sessions from an
/// `EngineConfig` — the `EngineConfig` overloads below open them through
/// `EngineRegistry::Global()` (engine/engine_registry.h) — and drive them
/// with `RunExperiment` for one-shot runs or `RunStreamingExperiment` for
/// batch-by-batch arrival curves. The `Aggregator` overload runs a bare
/// offline method outside the session lifecycle (useful for posterior
/// inspection, where the caller keeps the aggregator).

#include <cstddef>
#include <string>
#include <vector>

#include "baselines/aggregator.h"
#include "data/dataset.h"
#include "engine/consensus_engine.h"
#include "engine/engine_config.h"
#include "eval/metrics.h"
#include "simulation/perturbations.h"
#include "util/status.h"

namespace cpa {

/// \brief Outcome of one aggregation run.
struct ExperimentResult {
  SetMetrics metrics;
  double seconds = 0.0;
  std::size_t iterations = 0;

  /// Wall-clock of the prediction phase inside `seconds` (offline CPA:
  /// `PredictLabels` after the fit; CPA-SVI: the final snapshot predict;
  /// 0 for methods that do not report it). Fig 7's `prediction_ms` column.
  double prediction_seconds = 0.0;
};

/// Runs `aggregator` on `dataset` (answers only — never the truth) and
/// scores the predictions against the dataset's ground truth.
Result<ExperimentResult> RunExperiment(Aggregator& aggregator, const Dataset& dataset);

/// Engine-session one-shot: feeds every answer of `dataset` to `engine` as
/// a single batch, finalizes, and scores the final consensus. The engine
/// must be freshly opened (nothing observed, not finalized).
Result<ExperimentResult> RunExperiment(ConsensusEngine& engine, const Dataset& dataset);

/// Convenience one-shot: opens a fresh session for `config` through
/// `EngineRegistry::Global()` (forwarding `config.num_threads` / `pool` to
/// the engine) and runs the engine overload above.
Result<ExperimentResult> RunExperiment(const EngineConfig& config,
                                       const Dataset& dataset);

/// \brief One scored snapshot of a streaming run.
struct StreamingStepResult {
  SetMetrics metrics;

  /// Seconds since the stream started (cumulative, includes snapshot cost).
  double seconds = 0.0;

  /// Session counters at snapshot time.
  std::size_t batches_seen = 0;
  std::size_t answers_seen = 0;

  /// ω_b of the step (0 for offline adapters).
  double learning_rate = 0.0;
};

/// \brief Outcome of a streaming run: optional per-batch curve + final.
struct StreamingExperimentResult {
  /// Scored snapshot after each batch (empty when `score_each_batch` is
  /// false — final-only runs skip the intermediate refit/predict cost).
  std::vector<StreamingStepResult> steps;

  /// Scored `Finalize()` consensus, timed over the whole stream.
  ExperimentResult final_result;
};

/// Streams `plan`'s batches of `dataset.answers` into `engine` (answers
/// only — never the truth), scoring a `Snapshot()` after each batch when
/// `score_each_batch` is set, then finalizes and scores. The engine must be
/// freshly opened; drive prefixes by passing a plan holding only the
/// first k batches.
Result<StreamingExperimentResult> RunStreamingExperiment(ConsensusEngine& engine,
                                                         const Dataset& dataset,
                                                         const BatchPlan& plan,
                                                         bool score_each_batch = true);

/// Convenience streaming run: opens a fresh session for `config` through
/// `EngineRegistry::Global()` and runs the engine overload above.
Result<StreamingExperimentResult> RunStreamingExperiment(
    const EngineConfig& config, const Dataset& dataset, const BatchPlan& plan,
    bool score_each_batch = true);

/// The method names of the paper's §5.2 comparison (Table 4, Figs 3–5), in
/// report order. All are registered in `EngineRegistry::Global()`; size a
/// config with `EngineConfig::ForDataset(method, dataset)`.
std::vector<std::string> PaperMethodNames();

}  // namespace cpa

#endif  // CPA_EVAL_EXPERIMENT_H_
