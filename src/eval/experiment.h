#ifndef CPA_EVAL_EXPERIMENT_H_
#define CPA_EVAL_EXPERIMENT_H_

/// \file experiment.h
/// \brief Uniform "run an aggregator on a dataset, score it, time it"
/// harness used by the benches.

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "baselines/aggregator.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "util/status.h"

namespace cpa {

/// \brief Outcome of one aggregation run.
struct ExperimentResult {
  SetMetrics metrics;
  double seconds = 0.0;
  std::size_t iterations = 0;
};

/// Runs `aggregator` on `dataset` (answers only — never the truth) and
/// scores the predictions against the dataset's ground truth.
Result<ExperimentResult> RunExperiment(Aggregator& aggregator, const Dataset& dataset);

/// \brief Factory registry for the aggregators the paper compares, so
/// benches can iterate "MV, EM, cBCC, CPA" uniformly. Each factory builds
/// a fresh aggregator sized for the given dataset.
using AggregatorFactory = std::function<std::unique_ptr<Aggregator>(const Dataset&)>;

/// The paper's §5.2 line-up: MV, EM (Dawid–Skene), cBCC and CPA.
/// `cpa_iterations` caps CPA's sweeps (benches trade a little accuracy for
/// sweep time).
std::map<std::string, AggregatorFactory> PaperAggregators(
    std::size_t cpa_iterations = 30);

}  // namespace cpa

#endif  // CPA_EVAL_EXPERIMENT_H_
