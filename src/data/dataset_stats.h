#ifndef CPA_DATA_DATASET_STATS_H_
#define CPA_DATA_DATASET_STATS_H_

/// \file dataset_stats.h
/// \brief Descriptive statistics per dataset — the rows of Table 3.

#include <cstddef>
#include <string>
#include <vector>

#include "data/dataset.h"

namespace cpa {

/// \brief The quantities the paper reports per dataset (Table 3) plus a few
/// structural measures used to verify simulator calibration.
struct DatasetStats {
  std::string name;
  std::size_t num_items = 0;      ///< |N| (the underlying item universe)
  std::size_t num_labels = 0;     ///< |Z| = C
  std::size_t num_questions = 0;  ///< items with >= 1 answer
  std::size_t num_workers = 0;    ///< workers with >= 1 answer
  std::size_t num_answers = 0;    ///< non-empty cells of M

  double mean_labels_per_answer = 0.0;   ///< avg |x_iu|
  double mean_labels_per_truth = 0.0;    ///< avg |y_i| over answered items
  double mean_answers_per_item = 0.0;    ///< redundancy
  double sparsity = 0.0;                 ///< empty-cell fraction of M
  double worker_load_skewness = 0.0;     ///< moment skewness of per-worker counts
};

/// Computes the statistics of `dataset`.
DatasetStats ComputeDatasetStats(const Dataset& dataset);

/// Moment-based sample skewness of `values` (0 for fewer than 3 samples or
/// zero variance). Used to verify the "skewed vs normal answer
/// distribution" dataset characteristics from §5.1.
double Skewness(const std::vector<double>& values);

}  // namespace cpa

#endif  // CPA_DATA_DATASET_STATS_H_
