#ifndef CPA_DATA_TYPES_H_
#define CPA_DATA_TYPES_H_

/// \file types.h
/// \brief Entity identifiers shared across the library.
///
/// The paper's problem setting (§2.2): a set of workers `U = {1..U}`, items
/// `N = {1..I}` and labels `Z = {1..C}`, all addressed by index. We use
/// zero-based 32-bit indices throughout; 32 bits comfortably cover the
/// paper's largest simulated datasets (10^4 workers, 10^6 answers).

#include <cstdint>

namespace cpa {

/// Zero-based worker index (`u` in the paper).
using WorkerId = std::uint32_t;

/// Zero-based item index (`i` in the paper).
using ItemId = std::uint32_t;

/// Zero-based label index (`c` in the paper).
using LabelId = std::uint32_t;

/// Sentinel for "no such entity".
inline constexpr std::uint32_t kInvalidId = 0xFFFFFFFFu;

}  // namespace cpa

#endif  // CPA_DATA_TYPES_H_
