#ifndef CPA_DATA_DATASET_H_
#define CPA_DATA_DATASET_H_

/// \file dataset.h
/// \brief A complete aggregation problem instance: answers + ground truth.
///
/// Mirrors the evaluation setup of §5.1: a named dataset with a label
/// universe, an answer matrix, and (for evaluation only — never shown to
/// the aggregators, `y = ∅` in all paper experiments) the true label sets.

#include <cstddef>
#include <string>
#include <vector>

#include "data/answer_matrix.h"
#include "data/label_set.h"
#include "util/status.h"

namespace cpa {

/// \brief One aggregation problem instance.
struct Dataset {
  /// Human-readable identifier ("image", "topic", ...).
  std::string name;

  /// Size of the label universe `C`.
  std::size_t num_labels = 0;

  /// The sparse I × U answer matrix.
  AnswerMatrix answers;

  /// True label sets, indexed by item; empty vector when truth is unknown.
  /// Used only by the evaluation harness (and optionally as observed `y`
  /// for semi-supervised inference).
  std::vector<LabelSet> ground_truth;

  /// Optional label display names (size `num_labels` when present).
  std::vector<std::string> label_names;

  std::size_t num_items() const { return answers.num_items(); }
  std::size_t num_workers() const { return answers.num_workers(); }
  bool has_ground_truth() const { return !ground_truth.empty(); }

  /// Items that received at least one answer ("questions" in Table 3).
  std::size_t NumAnsweredItems() const;

  /// Structural validation: dimensions line up, label ids in range.
  Status Validate() const;
};

}  // namespace cpa

#endif  // CPA_DATA_DATASET_H_
