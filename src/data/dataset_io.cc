#include "data/dataset_io.h"

#include <fstream>
#include <sstream>

#include "util/string_utils.h"

namespace cpa {
namespace {

std::string LabelsToCsv(const LabelSet& labels) {
  std::string out;
  bool first = true;
  for (LabelId c : labels) {
    if (!first) out += ",";
    out += std::to_string(c);
    first = false;
  }
  return out;
}

Result<LabelSet> LabelsFromCsv(std::string_view text) {
  std::vector<LabelId> labels;
  for (const std::string& part : Split(text, ',')) {
    if (Trim(part).empty()) continue;
    CPA_ASSIGN_OR_RETURN(const long long value, ParseInt(part));
    if (value < 0) return Status::InvalidArgument("negative label id");
    labels.push_back(static_cast<LabelId>(value));
  }
  return LabelSet::FromUnsorted(std::move(labels));
}

}  // namespace

std::string DatasetToString(const Dataset& dataset) {
  std::ostringstream os;
  os << "# cpa-dataset v1\n";
  os << "name\t" << dataset.name << "\n";
  os << "dims\t" << dataset.answers.num_items() << "\t" << dataset.answers.num_workers()
     << "\t" << dataset.num_labels << "\n";
  for (std::size_t i = 0; i < dataset.ground_truth.size(); ++i) {
    if (dataset.ground_truth[i].empty()) continue;
    os << "truth\t" << i << "\t" << LabelsToCsv(dataset.ground_truth[i]) << "\n";
  }
  for (const Answer& a : dataset.answers.answers()) {
    os << "answer\t" << a.item << "\t" << a.worker << "\t" << LabelsToCsv(a.labels)
       << "\n";
  }
  return os.str();
}

Result<Dataset> DatasetFromString(const std::string& text) {
  Dataset dataset;
  bool dims_seen = false;
  std::vector<std::pair<std::size_t, LabelSet>> truths;
  std::istringstream is(text);
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    const std::string_view trimmed = Trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    const auto fields = Split(trimmed, '\t');
    const std::string& kind = fields[0];
    const auto fail = [&](const std::string& why) {
      return Status::InvalidArgument(
          StrFormat("line %zu: %s", line_number, why.c_str()));
    };
    if (kind == "name") {
      if (fields.size() != 2) return fail("name needs 1 field");
      dataset.name = fields[1];
    } else if (kind == "dims") {
      if (fields.size() != 4) return fail("dims needs 3 fields");
      CPA_ASSIGN_OR_RETURN(const long long items, ParseInt(fields[1]));
      CPA_ASSIGN_OR_RETURN(const long long workers, ParseInt(fields[2]));
      CPA_ASSIGN_OR_RETURN(const long long labels, ParseInt(fields[3]));
      if (items < 0 || workers < 0 || labels <= 0) return fail("non-positive dims");
      dataset.answers = AnswerMatrix(static_cast<std::size_t>(items),
                                     static_cast<std::size_t>(workers));
      dataset.num_labels = static_cast<std::size_t>(labels);
      dims_seen = true;
    } else if (kind == "truth") {
      if (!dims_seen) return fail("truth before dims");
      if (fields.size() != 3) return fail("truth needs 2 fields");
      CPA_ASSIGN_OR_RETURN(const long long item, ParseInt(fields[1]));
      CPA_ASSIGN_OR_RETURN(LabelSet labels, LabelsFromCsv(fields[2]));
      truths.emplace_back(static_cast<std::size_t>(item), std::move(labels));
    } else if (kind == "answer") {
      if (!dims_seen) return fail("answer before dims");
      if (fields.size() != 4) return fail("answer needs 3 fields");
      CPA_ASSIGN_OR_RETURN(const long long item, ParseInt(fields[1]));
      CPA_ASSIGN_OR_RETURN(const long long worker, ParseInt(fields[2]));
      CPA_ASSIGN_OR_RETURN(LabelSet labels, LabelsFromCsv(fields[3]));
      const Status added = dataset.answers.Add(static_cast<ItemId>(item),
                                               static_cast<WorkerId>(worker),
                                               std::move(labels));
      if (!added.ok()) return fail(added.ToString());
    } else {
      return fail("unknown record kind: " + kind);
    }
  }
  if (!dims_seen) return Status::InvalidArgument("missing dims record");
  if (!truths.empty()) {
    dataset.ground_truth.assign(dataset.answers.num_items(), LabelSet());
    for (auto& [item, labels] : truths) {
      if (item >= dataset.ground_truth.size()) {
        return Status::OutOfRange(StrFormat("truth item %zu out of range", item));
      }
      dataset.ground_truth[item] = std::move(labels);
    }
  }
  CPA_RETURN_NOT_OK(dataset.Validate());
  return dataset;
}

Status SaveDataset(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IOError("cannot open for writing: " + path);
  out << DatasetToString(dataset);
  out.flush();
  if (!out.good()) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Result<Dataset> LoadDataset(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return DatasetFromString(buffer.str());
}

}  // namespace cpa
