#include "data/answer_matrix.h"

#include "util/string_utils.h"

namespace cpa {

AnswerMatrix::AnswerMatrix(std::size_t num_items, std::size_t num_workers)
    : num_items_(num_items),
      num_workers_(num_workers),
      by_item_(num_items),
      by_worker_(num_workers) {}

Status AnswerMatrix::Add(ItemId item, WorkerId worker, LabelSet labels) {
  if (item >= num_items_) {
    return Status::OutOfRange(StrFormat("item %u >= %zu", item, num_items_));
  }
  if (worker >= num_workers_) {
    return Status::OutOfRange(StrFormat("worker %u >= %zu", worker, num_workers_));
  }
  if (labels.empty()) {
    return Status::InvalidArgument("empty answer; model absence by not adding");
  }
  if (HasAnswer(item, worker)) {
    return Status::FailedPrecondition(
        StrFormat("duplicate answer for item %u by worker %u", item, worker));
  }
  const std::size_t index = answers_.size();
  answers_.push_back(Answer{item, worker, std::move(labels)});
  by_item_[item].push_back(index);
  by_worker_[worker].push_back(index);
  return Status::OK();
}

std::span<const std::size_t> AnswerMatrix::AnswersOfItem(ItemId item) const {
  if (item >= num_items_) return {};
  return by_item_[item];
}

std::span<const std::size_t> AnswerMatrix::AnswersOfWorker(WorkerId worker) const {
  if (worker >= num_workers_) return {};
  return by_worker_[worker];
}

bool AnswerMatrix::HasAnswer(ItemId item, WorkerId worker) const {
  if (item >= num_items_) return false;
  for (std::size_t index : by_item_[item]) {
    if (answers_[index].worker == worker) return true;
  }
  return false;
}

Result<LabelSet> AnswerMatrix::GetAnswer(ItemId item, WorkerId worker) const {
  if (item >= num_items_) {
    return Status::OutOfRange(StrFormat("item %u >= %zu", item, num_items_));
  }
  for (std::size_t index : by_item_[item]) {
    if (answers_[index].worker == worker) return answers_[index].labels;
  }
  return Status::NotFound(
      StrFormat("no answer for item %u by worker %u", item, worker));
}

double AnswerMatrix::Sparsity() const {
  const double cells =
      static_cast<double>(num_items_) * static_cast<double>(num_workers_);
  if (cells <= 0.0) return 1.0;
  return 1.0 - static_cast<double>(answers_.size()) / cells;
}

std::size_t AnswerMatrix::TotalLabelAssignments() const {
  std::size_t total = 0;
  for (const Answer& a : answers_) total += a.labels.size();
  return total;
}

AnswerMatrix AnswerMatrix::Subset(std::span<const std::size_t> keep) const {
  AnswerMatrix subset(num_items_, num_workers_);
  for (std::size_t index : keep) {
    if (index >= answers_.size()) continue;
    const Answer& a = answers_[index];
    // Add cannot fail here: indices are valid and (item, worker) pairs are
    // unique in the source matrix.
    subset.Add(a.item, a.worker, a.labels).ok();
  }
  return subset;
}

}  // namespace cpa
