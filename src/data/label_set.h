#ifndef CPA_DATA_LABEL_SET_H_
#define CPA_DATA_LABEL_SET_H_

/// \file label_set.h
/// \brief Sorted sets of labels — the unit of partial agreement.
///
/// In partial-agreement tasks every answer `x_iu ⊆ Z` and every ground
/// truth `y_i ⊆ Z` is a *set* of labels. Sets are small (a handful of
/// labels out of up to ~1500), so a sorted vector beats bitsets and hash
/// sets on both memory and scan speed, and gives O(|a|+|b|) merges.

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "data/types.h"

namespace cpa {

/// \brief An immutable-by-convention sorted set of label ids.
class LabelSet {
 public:
  /// Empty set.
  LabelSet() = default;

  /// From an initializer list (deduplicated, sorted).
  LabelSet(std::initializer_list<LabelId> labels);

  /// From any unsorted label sequence (deduplicated, sorted).
  static LabelSet FromUnsorted(std::vector<LabelId> labels);

  /// From an indicator vector: labels c with indicator[c] != 0.
  static LabelSet FromIndicator(std::span<const double> indicator,
                                double threshold = 0.5);

  /// Number of labels in the set.
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  /// Membership test, O(log n).
  bool Contains(LabelId label) const;

  /// Inserts a label (no-op if present).
  void Add(LabelId label);

  /// Removes a label (no-op if absent).
  void Remove(LabelId label);

  /// The sorted labels.
  std::span<const LabelId> labels() const { return labels_; }

  auto begin() const { return labels_.begin(); }
  auto end() const { return labels_.end(); }

  /// |this ∩ other|, O(|a|+|b|).
  std::size_t IntersectionSize(const LabelSet& other) const;

  /// |this ∪ other|.
  std::size_t UnionSize(const LabelSet& other) const;

  /// Set union / intersection / difference as new sets.
  LabelSet Union(const LabelSet& other) const;
  LabelSet Intersect(const LabelSet& other) const;
  LabelSet Difference(const LabelSet& other) const;

  /// Jaccard similarity; 1.0 when both sets are empty.
  double Jaccard(const LabelSet& other) const;

  /// Writes a {0,1} indicator of dimension `num_labels` into `out`.
  void ToIndicator(std::span<double> out) const;

  /// Renders "{1,4,5}" for logging and goldens.
  std::string ToString() const;

  bool operator==(const LabelSet& other) const { return labels_ == other.labels_; }
  bool operator!=(const LabelSet& other) const { return labels_ != other.labels_; }

  /// Largest label id in the set; kInvalidId when empty.
  LabelId MaxLabel() const;

 private:
  std::vector<LabelId> labels_;
};

}  // namespace cpa

#endif  // CPA_DATA_LABEL_SET_H_
