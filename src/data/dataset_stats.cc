#include "data/dataset_stats.h"

#include <cmath>

namespace cpa {

double Skewness(const std::vector<double>& values) {
  const std::size_t n = values.size();
  if (n < 3) return 0.0;
  double mean = 0.0;
  for (double v : values) mean += v;
  mean /= static_cast<double>(n);
  double m2 = 0.0;
  double m3 = 0.0;
  for (double v : values) {
    const double d = v - mean;
    m2 += d * d;
    m3 += d * d * d;
  }
  m2 /= static_cast<double>(n);
  m3 /= static_cast<double>(n);
  if (m2 <= 1e-12) return 0.0;
  return m3 / std::pow(m2, 1.5);
}

DatasetStats ComputeDatasetStats(const Dataset& dataset) {
  DatasetStats stats;
  stats.name = dataset.name;
  stats.num_items = dataset.answers.num_items();
  stats.num_labels = dataset.num_labels;
  stats.num_answers = dataset.answers.num_answers();
  stats.sparsity = dataset.answers.Sparsity();

  std::size_t answered_items = 0;
  std::size_t total_item_answers = 0;
  for (ItemId i = 0; i < dataset.answers.num_items(); ++i) {
    const std::size_t count = dataset.answers.AnswersOfItem(i).size();
    if (count > 0) {
      ++answered_items;
      total_item_answers += count;
    }
  }
  stats.num_questions = answered_items;
  stats.mean_answers_per_item =
      answered_items > 0
          ? static_cast<double>(total_item_answers) / static_cast<double>(answered_items)
          : 0.0;

  std::vector<double> worker_loads;
  for (WorkerId u = 0; u < dataset.answers.num_workers(); ++u) {
    const std::size_t count = dataset.answers.AnswersOfWorker(u).size();
    if (count > 0) worker_loads.push_back(static_cast<double>(count));
  }
  stats.num_workers = worker_loads.size();
  stats.worker_load_skewness = Skewness(worker_loads);

  if (stats.num_answers > 0) {
    stats.mean_labels_per_answer =
        static_cast<double>(dataset.answers.TotalLabelAssignments()) /
        static_cast<double>(stats.num_answers);
  }

  if (dataset.has_ground_truth()) {
    std::size_t truth_labels = 0;
    std::size_t truth_items = 0;
    for (ItemId i = 0; i < dataset.answers.num_items(); ++i) {
      if (dataset.answers.AnswersOfItem(i).empty()) continue;
      truth_labels += dataset.ground_truth[i].size();
      ++truth_items;
    }
    if (truth_items > 0) {
      stats.mean_labels_per_truth =
          static_cast<double>(truth_labels) / static_cast<double>(truth_items);
    }
  }
  return stats;
}

}  // namespace cpa
