#include "data/dataset.h"

#include "util/string_utils.h"

namespace cpa {

std::size_t Dataset::NumAnsweredItems() const {
  std::size_t count = 0;
  for (ItemId i = 0; i < answers.num_items(); ++i) {
    if (!answers.AnswersOfItem(i).empty()) ++count;
  }
  return count;
}

Status Dataset::Validate() const {
  if (num_labels == 0) return Status::InvalidArgument("num_labels must be positive");
  if (!ground_truth.empty() && ground_truth.size() != answers.num_items()) {
    return Status::InvalidArgument(
        StrFormat("ground truth size %zu != num items %zu", ground_truth.size(),
                  answers.num_items()));
  }
  if (!label_names.empty() && label_names.size() != num_labels) {
    return Status::InvalidArgument(
        StrFormat("label names size %zu != num labels %zu", label_names.size(),
                  num_labels));
  }
  for (const Answer& a : answers.answers()) {
    const LabelId max_label = a.labels.MaxLabel();
    if (max_label != kInvalidId && max_label >= num_labels) {
      return Status::OutOfRange(
          StrFormat("answer label %u >= num labels %zu (item %u, worker %u)",
                    max_label, num_labels, a.item, a.worker));
    }
  }
  for (const LabelSet& truth : ground_truth) {
    const LabelId max_label = truth.MaxLabel();
    if (max_label != kInvalidId && max_label >= num_labels) {
      return Status::OutOfRange(
          StrFormat("truth label %u >= num labels %zu", max_label, num_labels));
    }
  }
  return Status::OK();
}

}  // namespace cpa
