#include "data/cooccurrence.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.h"

namespace cpa {

CooccurrenceMatrix::CooccurrenceMatrix(std::size_t num_labels,
                                       std::span<const LabelSet> sets)
    : num_labels_(num_labels), num_sets_(sets.size()), counts_(num_labels, num_labels) {
  for (const LabelSet& set : sets) {
    const auto labels = set.labels();
    for (std::size_t i = 0; i < labels.size(); ++i) {
      CPA_CHECK_LT(labels[i], num_labels_);
      counts_(labels[i], labels[i]) += 1.0;
      for (std::size_t j = i + 1; j < labels.size(); ++j) {
        counts_(labels[i], labels[j]) += 1.0;
        counts_(labels[j], labels[i]) += 1.0;
      }
    }
  }
}

std::size_t CooccurrenceMatrix::MarginalCount(LabelId c) const {
  return static_cast<std::size_t>(counts_(c, c));
}

std::size_t CooccurrenceMatrix::PairCount(LabelId a, LabelId b) const {
  if (a == b) return MarginalCount(a);
  return static_cast<std::size_t>(counts_(a, b));
}

double CooccurrenceMatrix::JaccardStrength(LabelId a, LabelId b) const {
  const double pair = counts_(a, b);
  const double denom = counts_(a, a) + counts_(b, b) - pair;
  if (a == b || denom <= 0.0) return a == b && counts_(a, a) > 0 ? 1.0 : 0.0;
  return pair / denom;
}

double CooccurrenceMatrix::NormalizedPmi(LabelId a, LabelId b) const {
  if (num_sets_ == 0) return 0.0;
  const double n = static_cast<double>(num_sets_);
  const double p_a = counts_(a, a) / n;
  const double p_b = counts_(b, b) / n;
  const double p_ab = counts_(a, b) / n;
  if (p_a <= 0.0 || p_b <= 0.0 || p_ab <= 0.0) return 0.0;
  if (p_ab >= 1.0) return 1.0;
  return std::log(p_ab / (p_a * p_b)) / (-std::log(p_ab));
}

std::vector<CooccurrenceMatrix::Edge> CooccurrenceMatrix::TopEdges(std::size_t k) const {
  std::vector<Edge> edges;
  for (LabelId a = 0; a < num_labels_; ++a) {
    for (LabelId b = a + 1; b < num_labels_; ++b) {
      if (counts_(a, b) > 0.0) {
        edges.push_back(Edge{a, b, JaccardStrength(a, b)});
      }
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const Edge& x, const Edge& y) { return x.strength > y.strength; });
  if (edges.size() > k) edges.resize(k);
  return edges;
}

std::vector<std::vector<LabelId>> CooccurrenceMatrix::Clusters(double threshold) const {
  // Union-find over labels that occur at least once.
  std::vector<LabelId> parent(num_labels_);
  std::iota(parent.begin(), parent.end(), 0u);
  const auto find = [&](LabelId x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (LabelId a = 0; a < num_labels_; ++a) {
    for (LabelId b = a + 1; b < num_labels_; ++b) {
      if (counts_(a, b) > 0.0 && JaccardStrength(a, b) >= threshold) {
        parent[find(a)] = find(b);
      }
    }
  }
  std::vector<std::vector<LabelId>> by_root(num_labels_);
  for (LabelId c = 0; c < num_labels_; ++c) {
    if (MarginalCount(c) == 0) continue;
    by_root[find(c)].push_back(c);
  }
  std::vector<std::vector<LabelId>> clusters;
  for (auto& members : by_root) {
    if (!members.empty()) clusters.push_back(std::move(members));
  }
  std::sort(clusters.begin(), clusters.end(),
            [](const auto& x, const auto& y) { return x.size() > y.size(); });
  return clusters;
}

double CooccurrenceMatrix::WeightedMeanNpmi() const {
  double weighted = 0.0;
  double weight = 0.0;
  for (LabelId a = 0; a < num_labels_; ++a) {
    for (LabelId b = a + 1; b < num_labels_; ++b) {
      const double n_ab = counts_(a, b);
      if (n_ab > 0.0) {
        weighted += n_ab * NormalizedPmi(a, b);
        weight += n_ab;
      }
    }
  }
  return weight > 0.0 ? weighted / weight : 0.0;
}

double CooccurrenceMatrix::MeanPairStrength() const {
  double total = 0.0;
  std::size_t pairs = 0;
  for (LabelId a = 0; a < num_labels_; ++a) {
    for (LabelId b = a + 1; b < num_labels_; ++b) {
      if (counts_(a, b) > 0.0) {
        total += JaccardStrength(a, b);
        ++pairs;
      }
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace cpa
