#ifndef CPA_DATA_COOCCURRENCE_H_
#define CPA_DATA_COOCCURRENCE_H_

/// \file cooccurrence.h
/// \brief Label co-occurrence analysis — the structure behind Fig 1 and
/// requirement (R3).
///
/// The paper motivates item clusters by co-occurrence dependencies between
/// labels ("sky" co-occurs with "birds" and "cloud"). This module computes
/// co-occurrence counts over a collection of label sets (ground truth or
/// answers), derives association strengths, and extracts label clusters by
/// thresholded connected components.

#include <cstddef>
#include <span>
#include <vector>

#include "data/label_set.h"
#include "util/matrix.h"

namespace cpa {

/// \brief Symmetric co-occurrence statistics over a label universe.
class CooccurrenceMatrix {
 public:
  /// Counts pairs within each set of `sets`; `num_labels` fixes dimensions.
  CooccurrenceMatrix(std::size_t num_labels, std::span<const LabelSet> sets);

  std::size_t num_labels() const { return num_labels_; }

  /// Number of sets containing label `c`.
  std::size_t MarginalCount(LabelId c) const;

  /// Number of sets containing both `a` and `b`.
  std::size_t PairCount(LabelId a, LabelId b) const;

  /// Jaccard strength of the (a, b) edge: n_ab / (n_a + n_b − n_ab).
  double JaccardStrength(LabelId a, LabelId b) const;

  /// Normalised pointwise mutual information in [−1, 1]; 0 when either
  /// label never occurs or the pair never co-occurs.
  double NormalizedPmi(LabelId a, LabelId b) const;

  /// The `k` strongest co-occurrence edges by Jaccard strength.
  struct Edge {
    LabelId a = 0;
    LabelId b = 0;
    double strength = 0.0;
  };
  std::vector<Edge> TopEdges(std::size_t k) const;

  /// Label clusters: connected components over edges with Jaccard strength
  /// at least `threshold`. Labels that never occur are omitted. Components
  /// are sorted by decreasing size.
  std::vector<std::vector<LabelId>> Clusters(double threshold) const;

  /// Mean Jaccard strength over co-occurring pairs (descriptive; note this
  /// is confounded by label popularity — prefer `WeightedMeanNpmi` to
  /// measure association).
  double MeanPairStrength() const;

  /// Count-weighted mean normalised PMI over co-occurring pairs. ≈ 0 when
  /// labels are drawn independently (whatever their popularity), positive
  /// under genuine co-occurrence structure — the scalar behind the
  /// "strong vs little label correlation" characterisation of §5.1.
  double WeightedMeanNpmi() const;

 private:
  std::size_t num_labels_;
  std::size_t num_sets_;
  Matrix counts_;  // symmetric; diagonal stores marginals
};

}  // namespace cpa

#endif  // CPA_DATA_COOCCURRENCE_H_
