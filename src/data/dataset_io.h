#ifndef CPA_DATA_DATASET_IO_H_
#define CPA_DATA_DATASET_IO_H_

/// \file dataset_io.h
/// \brief Plain-text persistence for datasets.
///
/// Format (TSV, one record per line, `#` comments allowed):
/// ```
/// # cpa-dataset v1
/// name\timage
/// dims\t<items>\t<workers>\t<labels>
/// truth\t<item>\t<c1,c2,...>
/// answer\t<item>\t<worker>\t<c1,c2,...>
/// ```
/// The format is line-oriented so simulated datasets can be diffed,
/// inspected and version-controlled.

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace cpa {

/// Serialises `dataset` to `path`. Overwrites existing content.
Status SaveDataset(const Dataset& dataset, const std::string& path);

/// Parses a dataset from `path` and validates it.
Result<Dataset> LoadDataset(const std::string& path);

/// Serialises to a string (used by the round-trip tests).
std::string DatasetToString(const Dataset& dataset);

/// Parses from a string.
Result<Dataset> DatasetFromString(const std::string& text);

}  // namespace cpa

#endif  // CPA_DATA_DATASET_IO_H_
