#ifndef CPA_DATA_ANSWER_MATRIX_H_
#define CPA_DATA_ANSWER_MATRIX_H_

/// \file answer_matrix.h
/// \brief The sparse I × U answer matrix `M` of the problem setting (§2.2).
///
/// Crowdsourcing matrices are extremely sparse (each worker answers a small
/// fraction of items), so answers are stored as a flat list with two
/// secondary indexes: by item (used by the item-cluster updates and
/// prediction) and by worker (used by the worker-community updates and the
/// SVI batching, which batches by worker).

#include <cstddef>
#include <span>
#include <vector>

#include "data/label_set.h"
#include "data/types.h"
#include "util/status.h"

namespace cpa {

/// \brief One worker's label set for one item: `x_iu ⊆ Z`.
struct Answer {
  ItemId item = 0;
  WorkerId worker = 0;
  LabelSet labels;
};

/// \brief Sparse answer matrix with by-item and by-worker traversal.
class AnswerMatrix {
 public:
  /// Creates an empty matrix over fixed dimensions.
  AnswerMatrix(std::size_t num_items, std::size_t num_workers);

  AnswerMatrix() : AnswerMatrix(0, 0) {}

  /// Adds an answer. Fails when ids are out of range, when the label set is
  /// empty (the paper models "no answer" as absence, not as ∅), or when the
  /// (item, worker) cell is already filled.
  Status Add(ItemId item, WorkerId worker, LabelSet labels);

  /// Number of stored answers (non-empty cells).
  std::size_t num_answers() const { return answers_.size(); }
  std::size_t num_items() const { return num_items_; }
  std::size_t num_workers() const { return num_workers_; }

  /// All answers in insertion order.
  std::span<const Answer> answers() const { return answers_; }

  /// Indexes of the answers for item `i` (into `answers()`).
  std::span<const std::size_t> AnswersOfItem(ItemId item) const;

  /// Indexes of the answers of worker `u` (into `answers()`).
  std::span<const std::size_t> AnswersOfWorker(WorkerId worker) const;

  /// The answer at a flat index.
  const Answer& answer(std::size_t index) const { return answers_[index]; }

  /// True when worker `u` answered item `i`.
  bool HasAnswer(ItemId item, WorkerId worker) const;

  /// Returns the labels of (item, worker), or NotFound.
  Result<LabelSet> GetAnswer(ItemId item, WorkerId worker) const;

  /// Fraction of empty cells: 1 − answers / (I·U).
  double Sparsity() const;

  /// Sum over answers of |x_iu| (total label assignments).
  std::size_t TotalLabelAssignments() const;

  /// Builds a copy containing only the answers whose flat index is in
  /// `keep` (used by the sparsity experiments and batch splitting).
  AnswerMatrix Subset(std::span<const std::size_t> keep) const;

 private:
  std::size_t num_items_;
  std::size_t num_workers_;
  std::vector<Answer> answers_;
  std::vector<std::vector<std::size_t>> by_item_;
  std::vector<std::vector<std::size_t>> by_worker_;
};

}  // namespace cpa

#endif  // CPA_DATA_ANSWER_MATRIX_H_
