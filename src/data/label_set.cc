#include "data/label_set.h"

#include <algorithm>

#include "util/logging.h"

namespace cpa {

LabelSet::LabelSet(std::initializer_list<LabelId> labels)
    : labels_(labels.begin(), labels.end()) {
  std::sort(labels_.begin(), labels_.end());
  labels_.erase(std::unique(labels_.begin(), labels_.end()), labels_.end());
}

LabelSet LabelSet::FromUnsorted(std::vector<LabelId> labels) {
  LabelSet set;
  set.labels_ = std::move(labels);
  std::sort(set.labels_.begin(), set.labels_.end());
  set.labels_.erase(std::unique(set.labels_.begin(), set.labels_.end()),
                    set.labels_.end());
  return set;
}

LabelSet LabelSet::FromIndicator(std::span<const double> indicator, double threshold) {
  LabelSet set;
  for (std::size_t c = 0; c < indicator.size(); ++c) {
    if (indicator[c] >= threshold) set.labels_.push_back(static_cast<LabelId>(c));
  }
  return set;
}

bool LabelSet::Contains(LabelId label) const {
  return std::binary_search(labels_.begin(), labels_.end(), label);
}

void LabelSet::Add(LabelId label) {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) labels_.insert(it, label);
}

void LabelSet::Remove(LabelId label) {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it != labels_.end() && *it == label) labels_.erase(it);
}

std::size_t LabelSet::IntersectionSize(const LabelSet& other) const {
  std::size_t count = 0;
  auto a = labels_.begin();
  auto b = other.labels_.begin();
  while (a != labels_.end() && b != other.labels_.end()) {
    if (*a < *b) {
      ++a;
    } else if (*b < *a) {
      ++b;
    } else {
      ++count;
      ++a;
      ++b;
    }
  }
  return count;
}

std::size_t LabelSet::UnionSize(const LabelSet& other) const {
  return size() + other.size() - IntersectionSize(other);
}

LabelSet LabelSet::Union(const LabelSet& other) const {
  LabelSet result;
  result.labels_.reserve(size() + other.size());
  std::set_union(labels_.begin(), labels_.end(), other.labels_.begin(),
                 other.labels_.end(), std::back_inserter(result.labels_));
  return result;
}

LabelSet LabelSet::Intersect(const LabelSet& other) const {
  LabelSet result;
  std::set_intersection(labels_.begin(), labels_.end(), other.labels_.begin(),
                        other.labels_.end(), std::back_inserter(result.labels_));
  return result;
}

LabelSet LabelSet::Difference(const LabelSet& other) const {
  LabelSet result;
  std::set_difference(labels_.begin(), labels_.end(), other.labels_.begin(),
                      other.labels_.end(), std::back_inserter(result.labels_));
  return result;
}

double LabelSet::Jaccard(const LabelSet& other) const {
  const std::size_t union_size = UnionSize(other);
  if (union_size == 0) return 1.0;
  return static_cast<double>(IntersectionSize(other)) /
         static_cast<double>(union_size);
}

void LabelSet::ToIndicator(std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  for (LabelId c : labels_) {
    CPA_CHECK_LT(c, out.size()) << "label outside indicator dimension";
    out[c] = 1.0;
  }
}

std::string LabelSet::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(labels_[i]);
  }
  out += "}";
  return out;
}

LabelId LabelSet::MaxLabel() const {
  return labels_.empty() ? kInvalidId : labels_.back();
}

}  // namespace cpa
